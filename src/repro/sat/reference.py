"""Reference CDCL core: the pre-flat-arena, object-per-clause solver.

This module is a frozen copy of the solver as it stood before the
flat-array kernel rewrite (see ``docs/SATCORE.md``).  It exists for two
purposes only:

* **differential testing** -- ``tests/sat/test_flat_vs_reference.py``
  drives random CNF and random ``T_ord`` instances through both cores
  and asserts verdict / model / unsat-core equivalence;
* **honest benchmarking** -- ``benchmarks/bench_ext_satcore.py`` measures
  the flat kernel against this implementation in the same process, so
  the recorded speedup is apples-to-apples.

Do not "optimize" this file; its value is that it stays byte-stable.
The solver implements the standard modern architecture:

* two-watched-literal unit propagation,
* VSIDS-style variable activities with phase saving,
* first-UIP conflict analysis with recursive clause minimization,
* non-chronological backjumping,
* Luby-sequence restarts and learned-clause database reduction.

It additionally implements the *online* DPLL(T) loop of the paper: after the
Boolean propagation fixpoint, newly assigned theory-relevant literals are fed
to the attached :class:`repro.sat.theory.Theory`.  Theory conflict clauses
enter the regular conflict analysis; theory propagations are enqueued with
their reason clauses.

Literals are DIMACS integers (``v`` / ``-v``); variables are 1-based.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.robustness import checkpoint as _robustness_checkpoint
from repro.robustness.budget import BudgetExceeded, get_active as _active_budget
from repro.sat.sharing import ShareChannel
from repro.sat.theory import Theory

#: Truth values used in the assignment array.
_UNASSIGNED = 0
_TRUE = 1
_FALSE = -1


class SolveResult:
    """Tri-valued result of :meth:`Solver.solve`."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SolverStats:
    """Counters reported by the solver (used by the Fig. 9 ablation)."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned: int = 0
    theory_conflicts: int = 0
    theory_propagations: int = 0
    max_trail: int = 0
    #: Number of :meth:`Solver.solve` calls on this instance.
    incremental_calls: int = 0
    #: Learned clauses carried into a re-solve (summed over calls 2..n).
    clauses_retained: int = 0
    #: Clauses published to / accepted from an attached share channel.
    shared_exported: int = 0
    shared_imported: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "decisions": self.decisions,
            "propagations": self.propagations,
            "conflicts": self.conflicts,
            "restarts": self.restarts,
            "learned": self.learned,
            "theory_conflicts": self.theory_conflicts,
            "theory_propagations": self.theory_propagations,
            "max_trail": self.max_trail,
            "incremental_calls": self.incremental_calls,
            "clauses_retained": self.clauses_retained,
            "shared_exported": self.shared_exported,
            "shared_imported": self.shared_imported,
        }


class _Clause:
    """A clause in the arena.  ``lits[0]`` and ``lits[1]`` are watched."""

    __slots__ = ("lits", "learned", "activity")

    def __init__(self, lits: List[int], learned: bool = False) -> None:
        self.lits = lits
        self.learned = learned
        self.activity = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clause({self.lits}{' L' if self.learned else ''})"


def luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence 1,1,2,1,1,2,4,…"""
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x %= size
    return 1 << seq


class ReferenceSolver:
    """The pre-rewrite CDCL solver (API-compatible with :class:`repro.sat.solver.Solver`).

    Typical use::

        s = ReferenceSolver()
        v1, v2 = s.new_var(), s.new_var()
        s.add_clause([v1, v2])
        s.add_clause([-v1, v2])
        assert s.solve() == SolveResult.SAT
        assert s.model_value(v2)
    """

    def __init__(self, theory: Optional[Theory] = None) -> None:
        self.theory: Theory = theory if theory is not None else Theory()
        self.nvars = 0
        # Indexed by variable (1-based; index 0 unused).
        self._assign: List[int] = [_UNASSIGNED]
        self._level: List[int] = [0]
        self._reason: List[Optional[_Clause]] = [None]
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [False]
        self._relevant: List[bool] = [False]
        # Watches indexed by literal: _watch_index(lit) -> list of clauses.
        self._watches: List[List[_Clause]] = [[], []]
        self._clauses: List[_Clause] = []
        self._learned: List[_Clause] = []
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._theory_qhead = 0
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._order_heap: List = []  # lazy max-heap of (-activity, var)
        self._unsat = False
        self._model: List[int] = []
        self._seen: List[bool] = [False]
        self._pending_lemmas: List[List[int]] = []
        #: Assumption literals of the current solve() call, in order.
        self._assumps: List[int] = []
        #: After an assumption-caused UNSAT: the failing subset of the
        #: assumptions (as passed).  Empty after a permanent UNSAT.
        self.unsat_core: List[int] = []
        #: Optional clause-exchange endpoint (portfolio clause sharing).
        self.share: Optional[ShareChannel] = None
        self.stats = SolverStats()
        #: Debug-mode invariant auditing (``REPRO_AUDIT=1`` or
        #: ``VerifierConfig.audit``): checks that theory conflict clauses
        #: are falsified, propagation reasons are well-formed, and unsat
        #: cores re-solve UNSAT (see :mod:`repro.oracle.audit`).
        from repro.oracle.audit import audit_enabled as _audit_enabled

        self.audit = _audit_enabled()
        self._in_audit = False
        #: Optional telemetry sink (``repro.verify.telemetry.TraceWriter``):
        #: receives solve_start/restart/theory_conflict/theory_propagation/
        #: solve_end events.  Kept off the hot boolean-propagation path.
        self.telemetry = None

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------

    def new_var(self, relevant: bool = False) -> int:
        """Allocate a fresh variable; returns its (positive) index.

        ``relevant=True`` marks the variable as theory-relevant: its
        assignments are reported to the attached theory solver.
        """
        self.nvars += 1
        self._assign.append(_UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(False)
        self._relevant.append(relevant)
        self._watches.append([])
        self._watches.append([])
        self._seen.append(False)
        self._heap_insert(self.nvars)
        return self.nvars

    def mark_relevant(self, var: int) -> None:
        """Mark an existing variable theory-relevant."""
        self._relevant[var] = True

    def add_clause(self, lits: Sequence[int]) -> bool:
        """Add a problem clause.  Returns False if the formula became UNSAT.

        May be called between :meth:`solve` calls (incremental use): any
        leftover search state is cancelled back to decision level 0 first.
        """
        if self._unsat:
            return False
        if self._trail_lim:
            self._backjump(0)
        # Simplify: drop duplicate/false literals, detect tautologies.
        seen = set()
        out: List[int] = []
        for lit in lits:
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            val = self._value(lit)
            if val == _TRUE:
                return True  # already satisfied at top level
            if val == _FALSE:
                continue
            seen.add(lit)
            out.append(lit)
        if not out:
            self._unsat = True
            return False
        if len(out) == 1:
            if not self._enqueue(out[0], None):
                self._unsat = True
                return False
            conflict = self._bool_propagate()
            if conflict is not None:
                self._unsat = True
                return False
            return True
        clause = _Clause(out)
        self._clauses.append(clause)
        self._attach(clause)
        return True

    # ------------------------------------------------------------------
    # Public solving API
    # ------------------------------------------------------------------

    def solve(
        self,
        max_conflicts: Optional[int] = None,
        time_limit_s: Optional[float] = None,
        assumptions: Optional[Sequence[int]] = None,
    ) -> str:
        """Run CDCL search.  Returns a :class:`SolveResult` constant.

        ``assumptions`` are literals decided (in order) before any free
        decision, MiniSat-style.  An UNSAT answer caused by the assumptions
        leaves a sufficient failing subset in :attr:`unsat_core` and is
        *not* permanent: the solver can be re-solved under different
        assumptions, and ``new_var`` / ``add_clause`` may be called between
        solves.  Learned clauses, activities, and saved phases are retained
        across calls.
        """
        self._assumps = list(assumptions) if assumptions else []
        for lit in self._assumps:
            if lit == 0 or abs(lit) > self.nvars:
                raise ValueError(f"invalid assumption literal {lit}")
        self.unsat_core = []
        self.stats.incremental_calls += 1
        if self.stats.incremental_calls > 1:
            self.stats.clauses_retained += len(self._learned)
            if self._trail_lim:
                self._backjump(0)
            self.theory.reset()
        if self.telemetry is not None:
            self.telemetry.emit(
                "solve_start",
                nvars=self.nvars,
                clauses=len(self._clauses),
                assumptions=len(self._assumps),
                call=self.stats.incremental_calls,
            )
        try:
            result = self._solve(max_conflicts, time_limit_s)
            # Publish leftover exports: a run that finished before its
            # first restart has never flushed, and its learned clauses are
            # still valuable to portfolio siblings racing the same CNF.
            if self.share is not None:
                self.share.flush()
        except BudgetExceeded as exc:
            # Attach the partial counters so the budget-exhausted UNKNOWN
            # still reports how far the search got.
            exc.partial_stats.update(self.stats.as_dict())
            if self.telemetry is not None:
                self.telemetry.emit(
                    "solve_end", result="budget_exceeded", **self.stats.as_dict()
                )
            raise
        if (
            self.audit
            and not self._in_audit
            and result == SolveResult.UNSAT
            and self.unsat_core
        ):
            self._audit_unsat_core()
        if self.telemetry is not None:
            self.telemetry.emit("solve_end", result=result, **self.stats.as_dict())
        return result

    def _audit_unsat_core(self) -> None:
        """Audit check: the reported unsat core re-solves UNSAT in
        isolation (on the same incremental instance, with the core as the
        only assumptions).  Telemetry and clause sharing are suspended for
        the inner solve so the audit leaves no external trace."""
        from repro.oracle.audit import AuditError

        core = list(self.unsat_core)
        assumps = list(self._assumps)
        stray = [lit for lit in core if lit not in assumps]
        if stray:
            raise AuditError(
                f"unsat core literals {stray} are not among the "
                f"assumptions {assumps}"
            )
        saved_telemetry, self.telemetry = self.telemetry, None
        saved_share, self.share = self.share, None
        self._in_audit = True
        try:
            res = self.solve(assumptions=core)
            if res != SolveResult.UNSAT:
                raise AuditError(
                    f"unsat core {core} does not re-solve UNSAT in "
                    f"isolation (got {res})"
                )
        finally:
            self._in_audit = False
            self.telemetry = saved_telemetry
            self.share = saved_share
            self.unsat_core = core
            self._assumps = assumps

    def _solve(
        self,
        max_conflicts: Optional[int],
        time_limit_s: Optional[float],
    ) -> str:
        if self._unsat:
            return SolveResult.UNSAT
        start = time.monotonic()
        restart_idx = 1
        restart_base = 100
        conflicts_total = 0
        max_learned = max(1000, len(self._clauses) // 2)
        while True:
            # Robustness checkpoint once per restart period: fires injected
            # faults and checks the run budget's deadline / memory cap
            # (per-conflict charging happens inside _search).
            _robustness_checkpoint("solve")
            # Clause exchange happens at restart boundaries only: the
            # solver is at decision level 0, so imports are plain clauses.
            if not self._exchange_shared():
                return SolveResult.UNSAT
            budget = restart_base * luby(restart_idx)
            status, used = self._search(
                budget, start, time_limit_s, max_conflicts, conflicts_total, max_learned
            )
            conflicts_total += used
            if status is not None:
                return status
            restart_idx += 1
            self.stats.restarts += 1
            if self.telemetry is not None:
                self.telemetry.emit(
                    "restart", index=restart_idx, conflicts=conflicts_total
                )
            if len(self._learned) > max_learned:
                self._reduce_db()
                max_learned = int(max_learned * 1.3)

    def model_value(self, var: int) -> bool:
        """Value of ``var`` in the satisfying model (after SAT)."""
        return self._model[var] == _TRUE

    def model_lit(self, lit: int) -> bool:
        v = self._model[abs(lit)]
        return (v == _TRUE) if lit > 0 else (v == _FALSE)

    def value(self, lit: int) -> Optional[bool]:
        """Current assignment of ``lit`` (None if unassigned)."""
        v = self._value(lit)
        if v == _UNASSIGNED:
            return None
        return v == _TRUE

    @property
    def decision_level(self) -> int:
        return len(self._trail_lim)

    # ------------------------------------------------------------------
    # Core search
    # ------------------------------------------------------------------

    def _search(
        self,
        budget: int,
        start: float,
        time_limit_s: Optional[float],
        max_conflicts: Optional[int],
        conflicts_before: int,
        max_learned: int,
    ):
        """One restart period.  Returns (status-or-None, conflicts used)."""
        conflicts = 0
        run_budget = _active_budget()
        while True:
            conflict = self._propagate()
            if conflict is not None:
                conflicts += 1
                self.stats.conflicts += 1
                if run_budget is not None:
                    run_budget.charge_conflicts(1, "solve")
                    if conflicts & 0xFF == 0:
                        run_budget.check("solve")
                if not self._normalize_conflict_level(conflict):
                    return SolveResult.UNSAT, conflicts
                learnt, back_level = self._analyze(conflict)
                self._backjump(back_level)
                self._record_learnt(learnt)
                self._flush_pending_lemmas()
                self._decay_activities()
                if max_conflicts is not None and (
                    conflicts_before + conflicts >= max_conflicts
                ):
                    return SolveResult.UNKNOWN, conflicts
                if time_limit_s is not None and (
                    time.monotonic() - start > time_limit_s
                ):
                    return SolveResult.UNKNOWN, conflicts
                if conflicts >= budget:
                    self._backjump(0)
                    return None, conflicts
            else:
                if time_limit_s is not None and (
                    time.monotonic() - start > time_limit_s
                ):
                    return SolveResult.UNKNOWN, conflicts
                # Assumptions are the first decisions (MiniSat-style).  An
                # already-true assumption gets an empty decision level so
                # level k always corresponds to assumption k; a false one
                # means UNSAT under these assumptions -- analyze the final
                # conflict into a core over the assumptions.
                placed = False
                while self.decision_level < len(self._assumps):
                    p = self._assumps[self.decision_level]
                    val = self._value(p)
                    if val == _TRUE:
                        self._trail_lim.append(len(self._trail))
                    elif val == _FALSE:
                        self.unsat_core = self._analyze_final(p)
                        return SolveResult.UNSAT, conflicts
                    else:
                        self.stats.decisions += 1
                        self._trail_lim.append(len(self._trail))
                        self._enqueue(p, None)
                        placed = True
                        break
                if placed:
                    continue  # propagate before the next assumption
                lit = self._pick_branch()
                if lit == 0:
                    final = self.theory.final_check()
                    if final.is_conflict:
                        handled = self._handle_theory_conflicts(final.conflicts)
                        if not handled:
                            return SolveResult.UNSAT, conflicts
                        continue
                    if final.propagations:
                        ok = self._apply_theory_propagations(final.propagations)
                        if ok is not None:
                            # Conflict while applying; loop re-propagates.
                            continue
                        continue
                    self._model = list(self._assign)
                    return SolveResult.SAT, conflicts
                self.stats.decisions += 1
                self._trail_lim.append(len(self._trail))
                self._enqueue(lit, None)

    def _propagate(self) -> Optional[_Clause]:
        """Boolean + theory propagation to fixpoint.

        Returns a falsified clause on conflict, else None.
        """
        while True:
            conflict = self._bool_propagate()
            if conflict is not None:
                return conflict
            # Feed newly assigned relevant literals to the theory.
            progressed = False
            while self._theory_qhead < len(self._trail):
                lit = self._trail[self._theory_qhead]
                self._theory_qhead += 1
                if not self._relevant[abs(lit)]:
                    continue
                res = self.theory.assign(lit, self.decision_level)
                if res.is_conflict:
                    self.stats.theory_conflicts += 1
                    if self.telemetry is not None:
                        self.telemetry.emit(
                            "theory_conflict",
                            level=self.decision_level,
                            clauses=len(res.conflicts),
                        )
                    clause = self._handle_theory_conflict_clauses(res.conflicts)
                    return clause
                if res.propagations:
                    c = self._apply_theory_propagations(res.propagations)
                    if c is not None:
                        return c
                    progressed = True
                    break  # run boolean propagation on the new literals
            if not progressed and self._theory_qhead >= len(self._trail):
                if self._qhead >= len(self._trail):
                    return None

    def _bool_propagate(self) -> Optional[_Clause]:
        """Two-watched-literal unit propagation.

        Hand-inlined value lookups: this is the solver's hottest loop and
        Python call overhead dominates otherwise.
        """
        assign = self._assign
        watches = self._watches
        trail = self._trail
        while self._qhead < len(trail):
            lit = trail[self._qhead]
            self._qhead += 1
            neg = -lit
            watchers = watches[2 * lit + 1] if lit > 0 else watches[-2 * lit]
            i = 0
            j = 0
            n = len(watchers)
            while i < n:
                clause = watchers[i]
                i += 1
                lits = clause.lits
                # Ensure the falsified literal is lits[1].
                if lits[0] == neg:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                # Inline: value(first).
                fv = assign[first] if first > 0 else -assign[-first]
                if fv == 1:
                    watchers[j] = clause
                    j += 1
                    continue
                # Look for a new (non-false) literal to watch.
                found = False
                for k in range(2, len(lits)):
                    lk = lits[k]
                    kv = assign[lk] if lk > 0 else -assign[-lk]
                    if kv != -1:
                        lits[1], lits[k] = lk, lits[1]
                        watches[2 * lk if lk > 0 else 1 - 2 * lk].append(clause)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or falsified.
                watchers[j] = clause
                j += 1
                if fv == -1:
                    # Conflict: keep remaining watchers, restore list.
                    while i < n:
                        watchers[j] = watchers[i]
                        j += 1
                        i += 1
                    del watchers[j:]
                    self._qhead = len(trail)
                    return clause
                self._enqueue(first, clause)
            del watchers[j:]
        return None

    def _handle_theory_conflict_clauses(self, conflicts: List[List[int]]) -> _Clause:
        """Store theory conflict clauses; return the first as the conflict.

        All returned clauses are currently falsified.  Extra clauses beyond
        the first (the paper generates *all* shortest-width conflict clauses)
        are queued and attached only after the backjump, when the watch
        invariant can be established safely.
        """
        if self.audit:
            from repro.oracle.audit import check_conflict_clause

            for clause_lits in conflicts:
                check_conflict_clause(self.value, clause_lits)
        first = _Clause(list(conflicts[0]), learned=True)
        for extra in conflicts[1:]:
            if len(extra) >= 1:
                self._pending_lemmas.append(list(extra))
        return first

    def _flush_pending_lemmas(self) -> None:
        """Attach lemmas queued during conflict handling.

        Called right after a backjump.  Each lemma is attached with two
        non-false watches when possible; unit lemmas propagate immediately;
        lemmas still falsified are dropped (the theory re-derives them).
        """
        pending, self._pending_lemmas = self._pending_lemmas, []
        for lits in pending:
            # Theory lemmas are theory-valid, hence shareable with any
            # solver working on the identical encoding.
            if self.share is not None and self.share.offer(lits):
                self.stats.shared_exported += 1
            non_false = [l for l in lits if self._value(l) != _FALSE]
            if len(lits) < 2:
                continue
            clause = _Clause(list(lits), learned=True)
            if len(non_false) >= 2:
                a = clause.lits.index(non_false[0])
                clause.lits[0], clause.lits[a] = clause.lits[a], clause.lits[0]
                b = clause.lits.index(non_false[1])
                clause.lits[1], clause.lits[b] = clause.lits[b], clause.lits[1]
            elif len(non_false) == 1:
                a = clause.lits.index(non_false[0])
                clause.lits[0], clause.lits[a] = clause.lits[a], clause.lits[0]
                # Second watch: the highest-level false literal.
                hi = max(range(1, len(clause.lits)), key=lambda k: self._level[abs(clause.lits[k])])
                clause.lits[1], clause.lits[hi] = clause.lits[hi], clause.lits[1]
                if self._value(clause.lits[0]) == _UNASSIGNED:
                    self._enqueue(clause.lits[0], clause)
            else:
                # Still falsified after the backjump; dropping is sound
                # (the lemma is theory-valid and will be re-derived).
                continue
            self._learned.append(clause)
            self.stats.learned += 1
            self._attach(clause)

    def _handle_theory_conflicts(self, conflicts: List[List[int]]) -> bool:
        """Conflict at final check.  Returns False if UNSAT at level 0."""
        self.stats.conflicts += 1
        self.stats.theory_conflicts += 1
        if self.telemetry is not None:
            self.telemetry.emit(
                "theory_conflict",
                level=self.decision_level,
                clauses=len(conflicts),
                final_check=True,
            )
        clause = self._handle_theory_conflict_clauses(conflicts)
        if not self._normalize_conflict_level(clause):
            return False
        learnt, back_level = self._analyze(clause)
        self._backjump(back_level)
        self._record_learnt(learnt)
        self._flush_pending_lemmas()
        self._decay_activities()
        return True

    def _apply_theory_propagations(self, props) -> Optional[_Clause]:
        """Enqueue theory-propagated literals.  Returns a conflict clause if
        a propagated literal is already false."""
        if self.telemetry is not None and props:
            self.telemetry.emit("theory_propagation", count=len(props))
        for lit, reason_lits in props:
            val = self._value(lit)
            if val == _TRUE:
                continue
            if self.audit:
                from repro.oracle.audit import check_propagation_reason

                check_propagation_reason(self.value, lit, reason_lits)
            reason = _Clause(list(reason_lits), learned=True)
            # Put the propagated literal first (reason-clause invariant).
            if reason.lits[0] != lit:
                idx = reason.lits.index(lit)
                reason.lits[0], reason.lits[idx] = reason.lits[idx], reason.lits[0]
            if val == _FALSE:
                return reason
            self.stats.theory_propagations += 1
            self._enqueue(lit, reason)
        return None

    def _normalize_conflict_level(self, conflict: _Clause) -> bool:
        """Prepare a falsified clause for 1UIP analysis.

        Theory conflict clauses (notably from final checks) may contain no
        literal at the current decision level; analysis requires one, so
        drop to the clause's highest level first.  Returns False when the
        clause is falsified at level 0 (the formula is UNSAT).
        """
        max_level = 0
        for lit in conflict.lits:
            lvl = self._level[abs(lit)]
            if lvl > max_level:
                max_level = lvl
        if max_level == 0:
            # A clause falsified at level 0 follows from the formula alone
            # (assumptions never enter level 0), so this UNSAT is permanent.
            self._unsat = True
            return False
        if max_level < self.decision_level:
            self._backjump(max_level)
        return True

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------

    def _analyze(self, conflict: _Clause):
        """First-UIP learning.  Returns (learnt clause lits, backjump level).

        The asserting literal ends up at index 0 of the learnt clause.
        """
        learnt: List[int] = [0]  # placeholder for the asserting literal
        seen = self._seen
        path_count = 0
        p = 0  # literal being resolved on (0 = use whole conflict clause)
        index = len(self._trail) - 1
        clause: Optional[_Clause] = conflict
        to_clear: List[int] = []
        while True:
            assert clause is not None
            if clause.learned:
                self._bump_clause(clause)
            start = 1 if p != 0 else 0
            for k in range(start, len(clause.lits)):
                q = clause.lits[k]
                v = abs(q)
                if not seen[v] and self._level[v] > 0:
                    seen[v] = True
                    to_clear.append(v)
                    self._bump_var(v)
                    if self._level[v] >= self.decision_level:
                        path_count += 1
                    else:
                        learnt.append(q)
            # Pick next literal on the trail to resolve.
            while not seen[abs(self._trail[index])]:
                index -= 1
            p = self._trail[index]
            v = abs(p)
            clause = self._reason[v]
            seen[v] = False
            index -= 1
            path_count -= 1
            if path_count <= 0:
                break
        learnt[0] = -p
        # Clause minimization: drop literals implied by the rest.
        abstract_levels = 0
        for q in learnt[1:]:
            abstract_levels |= 1 << (self._level[abs(q)] & 31)
        minimized = [learnt[0]]
        for q in learnt[1:]:
            if self._reason[abs(q)] is None or not self._lit_redundant(
                q, abstract_levels, to_clear
            ):
                minimized.append(q)
        learnt = minimized
        for v in to_clear:
            seen[v] = False
        # Backjump level: second-highest level in the clause.
        if len(learnt) == 1:
            back_level = 0
        else:
            max_i = 1
            for k in range(2, len(learnt)):
                if self._level[abs(learnt[k])] > self._level[abs(learnt[max_i])]:
                    max_i = k
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            back_level = self._level[abs(learnt[1])]
        return learnt, back_level

    def _lit_redundant(self, lit: int, abstract_levels: int, to_clear: List[int]) -> bool:
        """Check (recursively) whether ``lit`` is implied by other learnt
        literals; part of clause minimization (Sorensson & Biere)."""
        stack = [lit]
        seen = self._seen
        top = len(to_clear)
        while stack:
            p = stack.pop()
            reason = self._reason[abs(p)]
            assert reason is not None
            for q in reason.lits[1:]:
                v = abs(q)
                if seen[v] or self._level[v] == 0:
                    continue
                if self._reason[v] is None or not (
                    (1 << (self._level[v] & 31)) & abstract_levels
                ):
                    # Cannot be resolved away: undo marks made here.
                    for u in to_clear[top:]:
                        seen[u] = False
                    del to_clear[top:]
                    return False
                seen[v] = True
                to_clear.append(v)
                stack.append(q)
        return True

    def _analyze_final(self, p: int) -> List[int]:
        """Failed-assumption analysis (MiniSat ``analyzeFinal``).

        ``p`` is an assumption that is false under the current (assumption-
        only) prefix of the trail.  Walk the implication graph backwards
        from ``-p``; every decision reached is an assumption, and together
        with ``p`` they form a subset of the assumptions sufficient for
        UNSAT -- the unsat core.  Returned literals are the assumptions as
        passed to :meth:`solve`.
        """
        core = [p]
        if self.decision_level == 0 or self._level[abs(p)] == 0:
            return core
        seen = self._seen
        to_clear = [abs(p)]
        seen[abs(p)] = True
        for i in range(len(self._trail) - 1, self._trail_lim[0] - 1, -1):
            lit = self._trail[i]
            v = abs(lit)
            if not seen[v]:
                continue
            reason = self._reason[v]
            if reason is None:
                # A decision above level 0 is an assumption (it was
                # enqueued exactly as passed).
                core.append(lit)
            else:
                for q in reason.lits[1:]:
                    u = abs(q)
                    if not seen[u] and self._level[u] > 0:
                        seen[u] = True
                        to_clear.append(u)
        for v in to_clear:
            seen[v] = False
        return core

    def _record_learnt(self, learnt: List[int]) -> None:
        if self.share is not None and self.share.offer(learnt):
            self.stats.shared_exported += 1
        if len(learnt) == 1:
            self._enqueue(learnt[0], None)
            return
        clause = _Clause(learnt, learned=True)
        self._learned.append(clause)
        self.stats.learned += 1
        self._attach(clause)
        self._bump_clause(clause)
        self._enqueue(learnt[0], clause)

    def _exchange_shared(self) -> bool:
        """Flush/import shared clauses at a restart boundary (level 0).

        Imported clauses are formula-valid for the identical encoding, so
        they are added as ordinary clauses.  Returns False if an import
        proves the formula UNSAT.
        """
        if self.share is None:
            return True
        for lits in self.share.exchange():
            self.stats.shared_imported += 1
            if not self.add_clause(lits):
                return False
        return not self._unsat

    # ------------------------------------------------------------------
    # Assignment management
    # ------------------------------------------------------------------

    def _enqueue(self, lit: int, reason: Optional[_Clause]) -> bool:
        if lit > 0:
            v = lit
            cur = self._assign[v]
            if cur:
                return cur == 1
            self._assign[v] = 1
            self._phase[v] = True
        else:
            v = -lit
            cur = self._assign[v]
            if cur:
                return cur == -1
            self._assign[v] = -1
            self._phase[v] = False
        self._level[v] = len(self._trail_lim)
        self._reason[v] = reason
        self._trail.append(lit)
        self.stats.propagations += 1
        if len(self._trail) > self.stats.max_trail:
            self.stats.max_trail = len(self._trail)
        return True

    def _backjump(self, level: int) -> None:
        if self.decision_level <= level:
            return
        bound = self._trail_lim[level]
        for i in range(len(self._trail) - 1, bound - 1, -1):
            lit = self._trail[i]
            v = abs(lit)
            self._assign[v] = _UNASSIGNED
            self._reason[v] = None
            self._heap_insert(v)
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._qhead = min(self._qhead, len(self._trail))
        self._theory_qhead = min(self._theory_qhead, len(self._trail))
        self.theory.backjump(level)

    def _pick_branch(self) -> int:
        import heapq

        while self._order_heap:
            _act, v = heapq.heappop(self._order_heap)
            if self._assign[v] == _UNASSIGNED:
                return v if self._phase[v] else -v
        return 0

    # ------------------------------------------------------------------
    # Activities
    # ------------------------------------------------------------------

    def _bump_var(self, v: int) -> None:
        self._activity[v] += self._var_inc
        if self._activity[v] > 1e100:
            for u in range(1, self.nvars + 1):
                self._activity[u] *= 1e-100
            self._var_inc *= 1e-100
        if self._assign[v] == _UNASSIGNED:
            # Lazy heap: push a fresh entry; stale duplicates are skipped
            # (by the unassigned check) when popped.
            self._heap_insert(v)

    def _bump_clause(self, clause: _Clause) -> None:
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for c in self._learned:
                c.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _decay_activities(self) -> None:
        self._var_inc /= self._var_decay
        self._cla_inc /= self._cla_decay

    # ------------------------------------------------------------------
    # Learned clause DB reduction
    # ------------------------------------------------------------------

    def _reduce_db(self) -> None:
        """Remove the lower-activity half of removable learned clauses."""
        locked = set()
        for v in range(1, self.nvars + 1):
            r = self._reason[v]
            if r is not None:
                locked.add(id(r))
        self._learned.sort(key=lambda c: c.activity)
        keep: List[_Clause] = []
        n_remove = len(self._learned) // 2
        removed = 0
        for clause in self._learned:
            if removed < n_remove and id(clause) not in locked and len(clause.lits) > 2:
                self._detach(clause)
                removed += 1
            else:
                keep.append(clause)
        self._learned = keep

    # ------------------------------------------------------------------
    # Watches / heap plumbing
    # ------------------------------------------------------------------

    @staticmethod
    def _widx(lit: int) -> int:
        v = lit if lit > 0 else -lit
        return 2 * v + (0 if lit > 0 else 1)

    def _attach(self, clause: _Clause) -> None:
        self._watches[self._widx(clause.lits[0])].append(clause)
        self._watches[self._widx(clause.lits[1])].append(clause)

    def _detach(self, clause: _Clause) -> None:
        for lit in clause.lits[:2]:
            lst = self._watches[self._widx(lit)]
            try:
                lst.remove(clause)
            except ValueError:
                pass

    def _value(self, lit: int) -> int:
        v = self._assign[abs(lit)]
        if v == _UNASSIGNED:
            return _UNASSIGNED
        return v if lit > 0 else -v

    # Lazy binary max-heap keyed by activity: entries are (-activity, var).
    # Duplicate entries are allowed; pop skips assigned variables, so stale
    # duplicates are harmless.
    def _heap_insert(self, v: int) -> None:
        import heapq

        heapq.heappush(self._order_heap, (-self._activity[v], v))
