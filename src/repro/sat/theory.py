"""DPLL(T) theory interface.

A theory solver participates in the *online* scheme of DPLL(T) (Figure 1 of
the paper): every time the SAT core reaches a Boolean propagation fixpoint it
feeds the newly assigned theory-relevant literals to the theory solver, which
may

* report the partial assignment theory-inconsistent by returning one or more
  *conflict clauses* (clauses falsified under the current assignment), or
* *propagate* values for unassigned literals, each justified by a *reason
  clause* (a clause in which the propagated literal is the only non-false
  literal).

On backjumps the SAT core notifies the theory so it can restore its internal
state (e.g. deactivate event-graph edges).
"""

from __future__ import annotations

from typing import List, Tuple


class TheoryResult:
    """Outcome of feeding one assigned literal to a theory solver.

    Attributes:
        conflicts: conflict clauses, each a list of DIMACS literals that is
            currently falsified.  Non-empty means the current assignment is
            theory-inconsistent.
        propagations: ``(lit, reason)`` pairs; ``lit`` is entailed by the
            theory under the current assignment and ``reason`` is a clause
            containing ``lit`` whose other literals are all currently false.
    """

    __slots__ = ("conflicts", "propagations")

    def __init__(self) -> None:
        self.conflicts: List[List[int]] = []
        self.propagations: List[Tuple[int, List[int]]] = []

    @property
    def is_conflict(self) -> bool:
        return bool(self.conflicts)

    def add_conflict(self, clause: List[int]) -> None:
        self.conflicts.append(clause)

    def add_propagation(self, lit: int, reason: List[int]) -> None:
        self.propagations.append((lit, reason))


class Theory:
    """Base class for theory solvers plugged into :class:`repro.sat.Solver`.

    The default implementation is the trivial (empty) theory: nothing is
    relevant, every assignment is consistent.
    """

    def relevant(self, var: int) -> bool:
        """Return True if assignments to ``var`` must be reported."""
        return False

    def assign(self, lit: int, level: int) -> TheoryResult:
        """Process the assignment of ``lit`` at decision ``level``.

        Called once per newly assigned relevant literal, in trail order.
        Must be *incremental*: the theory accumulates state across calls and
        unwinds it in :meth:`backjump`.
        """
        return TheoryResult()

    def backjump(self, level: int) -> None:
        """Undo all effects of assignments made at levels > ``level``."""

    def reset(self) -> None:
        """Prepare for a fresh :meth:`Solver.solve` call on the same
        (possibly extended) problem.

        Called by the solver at the start of every re-solve.  Level-0 state
        is *kept*: anything activated at level 0 follows from unit clauses
        and remains valid across queries.  Theories whose per-query state
        is exactly the assignment trail (like the ordering-consistency
        solver) get the right behaviour from this default.
        """
        self.backjump(0)

    def final_check(self) -> TheoryResult:
        """Called when the Boolean assignment is total and consistent so far.

        Theories that are exhaustive in :meth:`assign` (like the ordering
        consistency solver) need not override this.
        """
        return TheoryResult()
