"""repro: satisfiability modulo ordering consistency for multi-threaded
program verification.

A from-scratch Python reproduction of

    He, Sun, Fan. "Satisfiability Modulo Ordering Consistency Theory for
    Multi-threaded Program Verification." PLDI 2021.

Quickstart::

    import repro

    SOURCE = '''
    int x = 0, y = 0;
    thread t1 { x = 1; y = 1; }
    thread t2 { int a; int b; a = y; b = x; assert(!(a == 1 && b == 0)); }
    '''
    result = repro.verify(SOURCE)
    print(result.verdict)          # "safe" under sequential consistency

The main entry points are :func:`verify` and :class:`VerifierConfig` (which
selects between the paper's tool Zord, its ablations Zord⁻ / Zord′ /
Tarjan-detection, and the baseline engines used in the evaluation).
"""

from repro.lang import parse
from repro.verify import (
    Trace,
    Verdict,
    VerificationResult,
    VerifierConfig,
)
from repro.portfolio import (
    PortfolioResult,
    verify_portfolio,
)
from repro import api
from repro.api import analyze, connect, serve, verify, verify_batch, verify_python

__version__ = "1.2.0"

__all__ = [
    "parse",
    "api",
    "verify",
    "verify_python",
    "verify_portfolio",
    "verify_batch",
    "analyze",
    "serve",
    "connect",
    "Verdict",
    "VerifierConfig",
    "VerificationResult",
    "PortfolioResult",
    "Trace",
    "__version__",
]
