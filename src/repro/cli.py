"""Command-line interface: ``repro-verify FILE [options]``."""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.verify import VerifierConfig, verify

_PRESETS = {
    "zord": VerifierConfig.zord,
    "zord-": VerifierConfig.zord_minus,
    "zord'": VerifierConfig.zord_prime,
    "zord-tarjan": VerifierConfig.zord_tarjan,
    "cbmc": VerifierConfig.cbmc,
    "dartagnan": VerifierConfig.dartagnan,
    "cpa-seq": VerifierConfig.cpa_seq,
    "lazy-cseq": VerifierConfig.lazy_cseq,
    "nidhugg-rfsc": VerifierConfig.nidhugg_rfsc,
    "genmc": VerifierConfig.genmc,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-verify",
        description="Verify a multi-threaded program under sequential "
        "consistency (PLDI'21 ordering-consistency reproduction).",
    )
    parser.add_argument("file", help="program source file")
    parser.add_argument(
        "--engine",
        default="zord",
        choices=sorted(_PRESETS),
        help="verification engine preset (default: zord)",
    )
    parser.add_argument("--unwind", type=int, default=8, help="loop bound")
    parser.add_argument("--width", type=int, default=8, help="integer bit-width")
    parser.add_argument(
        "--memory-model",
        default="sc",
        choices=("sc", "tso", "pso"),
        help="memory consistency model (weak models: SMT engines only)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, help="time budget in seconds"
    )
    parser.add_argument(
        "--witness", action="store_true", help="print a counterexample trace"
    )
    parser.add_argument("--stats", action="store_true", help="print statistics")
    parser.add_argument(
        "--dump-smt2",
        metavar="FILE",
        help="write the encoding as an SMT-LIB 2 script and exit",
    )
    parser.add_argument(
        "--dump-dimacs",
        metavar="FILE",
        help="write the bit-blasted CNF as DIMACS and exit",
    )
    args = parser.parse_args(argv)

    with open(args.file) as f:
        source = f.read()

    from repro.lang.lexer import LexError
    from repro.lang.parser import ParseError
    from repro.lang.sema import SemanticError

    try:
        if args.dump_smt2 or args.dump_dimacs:
            return _dump(source, args)
        return _verify(source, args)
    except (LexError, ParseError, SemanticError) as exc:
        print(f"{args.file}: error: {exc}", file=sys.stderr)
        return 1


def _verify(source: str, args) -> int:
    config = _PRESETS[args.engine](
        unwind=args.unwind,
        width=args.width,
        time_limit_s=args.timeout,
        memory_model=args.memory_model,
    )
    result = verify(source, config)
    print(f"verdict: {result.verdict.upper()}  ({result.wall_time_s:.3f}s)")
    if args.witness and result.witness is not None:
        print(result.witness)
    if args.stats:
        for key in sorted(result.stats):
            print(f"  {key}: {result.stats[key]}")
    return 0 if result.verdict != "unknown" else 2


def _dump(source: str, args) -> int:
    from repro.encoding.encoder import encode_program
    from repro.encoding.export import to_dimacs, to_smtlib
    from repro.frontend import build_symbolic_program
    from repro.lang import parse as parse_program

    sym = build_symbolic_program(
        parse_program(source), unwind=args.unwind, width=args.width
    )
    if args.dump_smt2:
        with open(args.dump_smt2, "w") as f:
            f.write(to_smtlib(sym))
        print(f"wrote {args.dump_smt2}")
    if args.dump_dimacs:
        encoded = encode_program(sym, memory_model=args.memory_model)
        with open(args.dump_dimacs, "w") as f:
            f.write(to_dimacs(encoded))
        print(f"wrote {args.dump_dimacs}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
