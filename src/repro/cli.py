"""Command-line interface: ``repro-verify FILE [options]``, the Python
frontend ``repro verify-py FILE.py [options]``, the static race-report
mode ``repro analyze FILE [options]``, the differential fuzzing mode
``repro fuzz [options]``, and the verification daemon
``repro serve (--stdio | --tcp HOST:PORT) [options]``.

Exit codes: 0 = SAFE (or, for ``analyze``, no races; for ``fuzz``, no
findings; for ``serve``, clean shutdown), 10 = UNSAFE (or races
reported), 2 = UNKNOWN (budget exhausted), 1 = input/usage error,
contained engine crash (ERROR verdict), or ``fuzz`` findings, 3 =
``serve`` stopped by a drain signal (SIGTERM/SIGINT: new work shed,
in-flight jobs finished, journal fsynced).

With ``REPRO_SERVER=HOST:PORT`` set, single-engine ``repro-verify`` and
``repro verify-py`` runs are routed through a running daemon instead of
solving in-process (see :mod:`repro.api`).
The engine choices are derived from the preset
table in :mod:`repro.verify.config`, which is validated against the
engine registry -- there is no second hand-maintained engine list here.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.verify import Verdict
from repro.verify.config import PRESETS

#: Verdict -> process exit code.  UNSAFE is distinct from SAFE so shell
#: pipelines and CI can branch on the verdict.
EXIT_SAFE = 0
EXIT_ERROR = 1
EXIT_UNKNOWN = 2
EXIT_UNSAFE = 10

_PRESETS = PRESETS  # single source of truth: the verify-layer preset table


def _exit_code(verdict: str) -> int:
    if verdict == Verdict.SAFE:
        return EXIT_SAFE
    if verdict == Verdict.UNSAFE:
        return EXIT_UNSAFE
    if verdict == Verdict.ERROR:
        return EXIT_ERROR
    return EXIT_UNKNOWN


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "analyze":
        return _analyze(argv[1:])
    if argv and argv[0] == "verify-py":
        return _verify_py(argv[1:])
    if argv and argv[0] == "fuzz":
        return _fuzz(argv[1:])
    if argv and argv[0] == "serve":
        return _serve(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-verify",
        description="Verify a multi-threaded program under sequential "
        "consistency (PLDI'21 ordering-consistency reproduction).",
    )
    parser.add_argument("file", help="program source file")
    parser.add_argument(
        "--engine",
        default="zord",
        choices=sorted(_PRESETS),
        help="verification engine preset (default: zord)",
    )
    parser.add_argument(
        "--portfolio",
        metavar="NAME,NAME,...",
        help="race a comma-separated portfolio of engine presets; the "
        "first conclusive verdict wins (overrides --engine)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help="worker processes for --portfolio (default: one per engine, "
        "capped at the CPU count; 1 = serial)",
    )
    parser.add_argument("--unwind", type=int, default=8, help="loop bound")
    parser.add_argument(
        "--unwind-max",
        type=int,
        default=None,
        metavar="N",
        help="iterative-deepening BMC: unroll to N but solve a doubling "
        "bound schedule 1,2,4,...,N incrementally (overrides --unwind; "
        "same verdict as one-shot at N, but shallow bugs are found "
        "without paying the deep search)",
    )
    parser.add_argument(
        "--unwind-schedule",
        metavar="B1,B2,...",
        default=None,
        help="explicit iterative-deepening bound schedule (normalized to "
        "end at the unwind bound); overrides the REPRO_UNWIND_SCHEDULE "
        "environment variable",
    )
    parser.add_argument("--width", type=int, default=8, help="integer bit-width")
    parser.add_argument(
        "--memory-model",
        default="sc",
        choices=("sc", "tso", "pso"),
        help="memory consistency model (weak models: SMT engines only)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, help="time budget in seconds"
    )
    parser.add_argument(
        "--max-conflicts",
        type=int,
        default=None,
        metavar="N",
        help="conflict/exploration budget (engine-specific analogue for "
        "non-SMT engines); exhaustion yields UNKNOWN",
    )
    parser.add_argument(
        "--memory-limit-mb",
        type=float,
        default=None,
        metavar="MB",
        help="resident-memory growth budget; exceeding it yields UNKNOWN",
    )
    parser.add_argument(
        "--fallback",
        action="append",
        default=None,
        metavar="PRESET",
        choices=sorted(_PRESETS),
        help="preset to fall back to when the primary engine is "
        "inconclusive or crashes (repeatable; tried in order, sharing "
        "one time budget)",
    )
    parser.add_argument(
        "--prune",
        dest="prune_level",
        action="store_const",
        const=2,
        default=None,
        help="force static-analysis encoding pruning at full level "
        "(without either flag the REPRO_PRUNE env var decides, "
        "falling back to 2)",
    )
    parser.add_argument(
        "--no-prune",
        dest="prune_level",
        action="store_const",
        const=0,
        help="disable encoding pruning (soundness off-switch: verdicts "
        "are identical, the encoding just keeps every RF/WS variable)",
    )
    parser.add_argument(
        "--share-clauses",
        action="store_true",
        help="with --portfolio: exchange short learned clauses between "
        "engines that solve the identical encoding (verdict-preserving)",
    )
    parser.add_argument(
        "--witness", action="store_true", help="print a counterexample trace"
    )
    parser.add_argument("--stats", action="store_true", help="print statistics")
    parser.add_argument(
        "--profile",
        metavar="FILE",
        help="profile the run with cProfile and write the dump to FILE "
        "(inspect with: python -m pstats FILE); also prints a kernel-phase "
        "summary attributing time to the flat SAT arena, the packed "
        "ordering kernel, and the layers around them",
    )
    parser.add_argument(
        "--trace-jsonl",
        metavar="FILE",
        help="stream a JSONL telemetry event trace (portfolio runs write "
        "one file per engine, suffixed with the preset name)",
    )
    parser.add_argument(
        "--dump-smt2",
        metavar="FILE",
        help="write the encoding as an SMT-LIB 2 script and exit",
    )
    parser.add_argument(
        "--dump-dimacs",
        metavar="FILE",
        help="write the bit-blasted CNF as DIMACS and exit",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.file) as f:
            source = f.read()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    from repro.lang.lexer import LexError
    from repro.lang.parser import ParseError
    from repro.lang.sema import SemanticError

    def _dispatch() -> int:
        if args.dump_smt2 or args.dump_dimacs:
            return _dump(source, args)
        if args.portfolio is not None:
            return _verify_portfolio(source, args)
        return _verify(source, args)

    try:
        if args.profile:
            import cProfile

            profiler = cProfile.Profile()
            profiler.enable()
            try:
                code = _dispatch()
            finally:
                profiler.disable()
                profiler.dump_stats(args.profile)
                print(f"wrote profile to {args.profile}", file=sys.stderr)
                _print_profile_phases(profiler)
            return code
        return _dispatch()
    except (LexError, ParseError, SemanticError) as exc:
        print(f"{args.file}: error: {exc}", file=sys.stderr)
        return EXIT_ERROR


#: Kernel-phase buckets for ``--profile``: the first path fragment that
#: matches a frame's filename decides its phase, so cProfile output can be
#: read as "where in the hot-path architecture did the time go" instead of
#: a flat function list.  Order matters -- most specific first.
_PROFILE_PHASES = (
    ("sat/kernel.py", "sat-kernel (arena propagate / indexed heap)"),
    ("sat/solver.py", "sat-search (analyze / branch / restarts)"),
    ("sat/reference.py", "sat-reference (frozen pre-rewrite core)"),
    ("ordering/kernel.py", "ord-kernel (packed bounded search)"),
    ("ordering/icd.py", "ord-icd (incremental cycle detection)"),
    ("ordering/event_graph.py", "ord-graph (edge store / activation)"),
    ("ordering/", "ord-theory (propagation / conflicts)"),
    ("encoding/", "encoding"),
    ("lang/", "frontend"),
    ("repro/", "repro-other"),
)


def _print_profile_phases(profiler) -> None:
    """Aggregate a cProfile run into kernel-phase buckets on stderr."""
    import pstats

    stats = pstats.Stats(profiler, stream=sys.stderr)
    buckets: dict = {}
    total = 0.0
    for (filename, _line, _name), (_cc, _nc, tottime, _ct, _callers) in (
        stats.stats.items()  # type: ignore[attr-defined]
    ):
        total += tottime
        norm = filename.replace("\\", "/")
        for fragment, label in _PROFILE_PHASES:
            if fragment in norm:
                buckets[label] = buckets.get(label, 0.0) + tottime
                break
        else:
            buckets[label := "stdlib/other"] = buckets.get(label, 0.0) + tottime
    print("profile phases (tottime):", file=sys.stderr)
    for label, t in sorted(buckets.items(), key=lambda kv: -kv[1]):
        pct = 100.0 * t / total if total else 0.0
        print(f"  {label:<45s} {t:8.3f}s {pct:5.1f}%", file=sys.stderr)


def _config_kwargs(args) -> dict:
    unwind = args.unwind
    schedule = None  # None = let REPRO_UNWIND_SCHEDULE decide
    if args.unwind_max is not None:
        unwind = args.unwind_max
        bounds, b = [], 1
        while b < unwind:
            bounds.append(b)
            b *= 2
        schedule = tuple(bounds) + (unwind,)
    if args.unwind_schedule is not None:
        try:
            schedule = tuple(
                int(p) for p in args.unwind_schedule.split(",") if p.strip()
            )
        except ValueError:
            raise SystemExit(
                f"error: --unwind-schedule expects a comma-separated list "
                f"of integers, got {args.unwind_schedule!r}"
            )
    return dict(
        unwind=unwind,
        width=args.width,
        time_limit_s=args.timeout,
        max_conflicts=args.max_conflicts,
        memory_limit_mb=args.memory_limit_mb,
        memory_model=args.memory_model,
        prune_level=args.prune_level,
        unwind_schedule=schedule,
    )


def _print_result_details(result, args) -> None:
    if result.diagnostic:
        print(f"  diagnostic: {result.diagnostic}")
    for attempt in result.attempts:
        print(
            f"  attempt {attempt['config_name']} ({attempt['engine']}): "
            f"{attempt['status']} in {attempt['wall_time_s']:.3f}s"
        )
    if args.witness and result.witness is not None:
        print(result.witness)
    if args.witness and result.schedule:
        print("violating schedule:")
        for i, step in enumerate(result.schedule):
            print(f"  {i:3d}: {step}")
    if args.stats:
        for key in sorted(result.stats):
            print(f"  {key}: {result.stats[key]}")


def _verify(source: str, args) -> int:
    from repro.api import verify

    config = _PRESETS[args.engine](
        trace_jsonl=args.trace_jsonl,
        fallbacks=tuple(args.fallback or ()),
        **_config_kwargs(args),
    )
    result = verify(source, config)
    print(f"verdict: {result.verdict.upper()}  ({result.wall_time_s:.3f}s)")
    _print_result_details(result, args)
    return _exit_code(result.verdict)


def _verify_portfolio(source: str, args) -> int:
    from repro.portfolio import verify_portfolio

    names = [n.strip() for n in args.portfolio.split(",") if n.strip()]
    unknown = [n for n in names if n not in _PRESETS]
    if unknown:
        print(
            f"error: unknown preset(s) {', '.join(unknown)}; "
            f"available: {', '.join(sorted(_PRESETS))}",
            file=sys.stderr,
        )
        return EXIT_ERROR
    if not names:
        print("error: --portfolio needs at least one preset", file=sys.stderr)
        return EXIT_ERROR
    configs = []
    for name in names:
        trace = f"{args.trace_jsonl}.{name}" if args.trace_jsonl else None
        configs.append(
            _PRESETS[name](trace_jsonl=trace, **_config_kwargs(args))
        )
    jobs = args.jobs or min(len(configs), os.cpu_count() or 1)
    outcome = verify_portfolio(
        source, configs, jobs=jobs, share_clauses=args.share_clauses
    )
    print(
        f"verdict: {outcome.verdict.upper()}  "
        f"({outcome.wall_time_s:.3f}s, winner: {outcome.winner or '-'})"
    )
    if args.share_clauses:
        print(f"  shared clauses: {outcome.shared_clauses}")
    for run in outcome.runs:
        print(
            f"  {run.config_name:<14} {run.status:<11} "
            f"{(run.verdict or '-').upper():<8} {run.wall_time_s:.3f}s"
        )
    if outcome.result is not None:
        _print_result_details(outcome.result, args)
    return _exit_code(outcome.verdict)


def _verify_py(argv: List[str]) -> int:
    """``repro verify-py FILE.py``: the Python ``threading`` frontend."""
    parser = argparse.ArgumentParser(
        prog="repro verify-py",
        description="Verify a Python threading program: translate the "
        "supported subset onto the mini language (precise file:line:col "
        "rejection outside it), verify through the normal pipeline "
        "(REPRO_SERVER routing and the verdict cache apply), and "
        "confirm UNSAFE verdicts two ways -- symbolic witness replay "
        "plus concrete execution of the original file under a "
        "randomized/witness-guided scheduler.",
    )
    parser.add_argument("file", help="Python source file")
    parser.add_argument(
        "--engine",
        default="zord",
        choices=sorted(_PRESETS),
        help="verification engine preset (default: zord)",
    )
    parser.add_argument("--unwind", type=int, default=8, help="loop bound")
    parser.add_argument(
        "--unwind-max", type=int, default=None, metavar="N",
        help="iterative-deepening BMC up to N (see repro-verify --help)",
    )
    parser.add_argument(
        "--unwind-schedule", metavar="B1,B2,...", default=None,
        help="explicit iterative-deepening bound schedule",
    )
    parser.add_argument("--width", type=int, default=8, help="integer bit-width")
    parser.add_argument(
        "--memory-model", default="sc", choices=("sc", "tso", "pso"),
        help="memory consistency model (weak models: SMT engines only)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, help="time budget in seconds"
    )
    parser.add_argument(
        "--max-conflicts", type=int, default=None, metavar="N",
        help="conflict/exploration budget; exhaustion yields UNKNOWN",
    )
    parser.add_argument(
        "--memory-limit-mb", type=float, default=None, metavar="MB",
        help="resident-memory growth budget",
    )
    parser.add_argument(
        "--fallback", action="append", default=None, metavar="PRESET",
        choices=sorted(_PRESETS),
        help="preset to fall back to when the primary is inconclusive",
    )
    parser.add_argument(
        "--prune", dest="prune_level", action="store_const", const=2,
        default=None, help="force encoding pruning at full level",
    )
    parser.add_argument(
        "--no-prune", dest="prune_level", action="store_const", const=0,
        help="disable encoding pruning",
    )
    parser.add_argument(
        "--witness", action="store_true",
        help="print the counterexample trace with Python file:line "
        "source locations",
    )
    parser.add_argument("--stats", action="store_true", help="print statistics")
    parser.add_argument(
        "--trace-jsonl", metavar="FILE",
        help="stream a JSONL telemetry event trace",
    )
    parser.add_argument(
        "--no-confirm", action="store_true",
        help="skip the two-way UNSAFE confirmation (symbolic replay + "
        "concrete randomized-scheduler execution)",
    )
    parser.add_argument(
        "--confirm-trials", type=int, default=50, metavar="N",
        help="randomized concrete executions to attempt after the "
        "witness-guided one (default: 50)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="base seed for the randomized scheduler (default: 0)",
    )
    args = parser.parse_args(argv)

    from repro.api import verify
    from repro.pyfront import SubsetError, translate_file

    try:
        translation = translate_file(args.file)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    except SubsetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    kwargs = _config_kwargs(args)
    config = _PRESETS[args.engine](
        trace_jsonl=args.trace_jsonl,
        fallbacks=tuple(args.fallback or ()),
        **kwargs,
    )
    result = verify(translation.program, config)
    print(f"verdict: {result.verdict.upper()}  ({result.wall_time_s:.3f}s)")
    if result.diagnostic:
        print(f"  diagnostic: {result.diagnostic}")
    for attempt in result.attempts:
        print(
            f"  attempt {attempt['config_name']} ({attempt['engine']}): "
            f"{attempt['status']} in {attempt['wall_time_s']:.3f}s"
        )
    unwind = kwargs["unwind"]
    if args.witness and result.witness is not None:
        from repro.pyfront.witness import witness_python_lines

        for line in witness_python_lines(
            translation, result.witness, unwind=unwind, width=args.width
        ):
            print(line)
    if args.stats:
        for key in sorted(result.stats):
            print(f"  {key}: {result.stats[key]}")

    if (
        result.verdict == Verdict.UNSAFE
        and result.witness is not None
        and not args.no_confirm
    ):
        from repro.pyfront.dynexec import confirm
        from repro.smc.witness_replay import replay_witness

        replayed = replay_witness(
            translation.program, result.witness,
            width=args.width, unwind=unwind,
        )
        print(f"  symbolic replay: {'ok' if replayed else 'FAILED'}")
        outcome = confirm(
            translation,
            witness=result.witness,
            trials=args.confirm_trials,
            seed=args.seed,
        )
        if outcome.confirmed:
            which = (
                "witness-guided"
                if outcome.failing_trial == -1
                else f"randomized trial {outcome.failing_trial}"
            )
            where = (
                f" at {args.file}:{outcome.outcome.line}"
                if outcome.outcome.line
                else ""
            )
            print(
                f"  concrete execution: CONFIRMED ({which}, "
                f"{outcome.outcome.error}{where})"
            )
        else:
            print(
                f"  concrete execution: not reproduced in "
                f"{outcome.trials_run} trials (the schedule space is "
                "sampled; the symbolic witness stands)"
            )
        for problem in outcome.problems:
            print(f"    note: {problem}")
    return _exit_code(result.verdict)


def _analyze(argv: List[str]) -> int:
    """``repro analyze FILE``: static race report, no solver involved."""
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description="Statically classify every conflicting access pair "
        "(MHP + lockset analysis) and report candidate data races with "
        "source locations.",
    )
    parser.add_argument("file", help="program source file")
    parser.add_argument("--unwind", type=int, default=8, help="loop bound")
    parser.add_argument("--width", type=int, default=8, help="integer bit-width")
    args = parser.parse_args(argv)

    try:
        with open(args.file) as f:
            source = f.read()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    from repro.analysis import analyze_program, render_report
    from repro.lang.lexer import LexError
    from repro.lang.parser import ParseError
    from repro.lang.sema import SemanticError

    try:
        report = analyze_program(source, unwind=args.unwind, width=args.width)
    except (LexError, ParseError, SemanticError) as exc:
        print(f"{args.file}: error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    print(render_report(report, filename=args.file))
    return EXIT_UNSAFE if report.has_races else EXIT_SAFE


def _fuzz(argv: List[str]) -> int:
    """``repro fuzz``: differential fuzzing of the engine matrix."""
    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description="Generate seeded random concurrent programs and "
        "differential-test an engine matrix on them: any verdict "
        "disagreement between sound engines, non-replaying UNSAFE "
        "witness, invariant-audit violation or engine crash is reported "
        "as a finding.",
    )
    parser.add_argument(
        "--seeds",
        default="100",
        metavar="N|LO:HI",
        help="seed count N (seeds 0..N-1) or an explicit LO:HI range "
        "(default: 100)",
    )
    parser.add_argument(
        "--matrix",
        default="quick",
        choices=["quick", "smt", "full"],
        help="engine matrix: quick (zord/tarjan/cbmc), smt (every DPLL(T) "
        "ablation x prune x schedule), full (+ baselines, SMC engines and "
        "portfolios) (default: quick)",
    )
    parser.add_argument("--unwind", type=int, default=4, help="loop bound")
    parser.add_argument("--width", type=int, default=8, help="integer bit-width")
    parser.add_argument(
        "--time-limit",
        type=float,
        default=10.0,
        metavar="S",
        help="per-engine-run budget in seconds (default: 10)",
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help="arm the internal invariant auditor (repro.oracle.audit) in "
        "every engine run",
    )
    parser.add_argument(
        "--no-replay",
        action="store_true",
        help="skip concrete replay of UNSAFE witnesses",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="report findings without delta-debugging minimization",
    )
    parser.add_argument(
        "--max-findings",
        type=int,
        default=25,
        metavar="N",
        help="stop after N findings (default: 25)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        help="also write findings (+ summary) as JSONL to FILE",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-seed progress"
    )
    parser.add_argument(
        "--pycheck",
        action="store_true",
        help="run the pyfront translator cross-check instead: generate "
        "Python-expressible programs, emit them as Python, translate "
        "them back, and require verdict equality with the direct run",
    )
    args = parser.parse_args(argv)

    if ":" in args.seeds:
        lo, hi = args.seeds.split(":", 1)
        seeds = range(int(lo), int(hi))
    else:
        seeds = range(int(args.seeds))

    if args.pycheck:
        from repro.oracle.pycheck import crosscheck
        from repro.verify import VerifierConfig

        def py_progress(seed: int, report) -> None:
            if not args.quiet and report.seeds_run % 50 == 0:
                print(
                    f"  ... {report.seeds_run} seeds, "
                    f"{len(report.findings)} findings",
                    file=sys.stderr,
                )

        report = crosscheck(
            seeds,
            config=VerifierConfig(
                unwind=args.unwind, width=args.width,
                time_limit_s=args.time_limit,
            ),
            max_findings=args.max_findings,
            progress=py_progress,
        )
        print(report.format())
        return EXIT_SAFE if report.ok else EXIT_ERROR

    from repro.oracle.harness import fuzz

    def progress(seed: int, report) -> None:
        if not args.quiet and report.seeds_run % 50 == 0:
            print(
                f"  ... {report.seeds_run} programs, "
                f"{len(report.findings)} findings",
                file=sys.stderr,
            )

    report = fuzz(
        seeds,
        matrix=args.matrix,
        unwind=args.unwind,
        width=args.width,
        time_limit_s=args.time_limit,
        audit=args.audit,
        replay=not args.no_replay,
        shrink=not args.no_shrink,
        max_findings=args.max_findings,
        progress=progress,
    )
    if args.out:
        report.write_jsonl(args.out)
    print(report.format())
    return EXIT_SAFE if report.ok else EXIT_ERROR


def _serve(argv: List[str]) -> int:
    """``repro serve``: the long-lived verification daemon."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the verification service: warm recycled worker "
        "processes behind a content-addressed verdict cache, speaking "
        "newline-delimited JSON (see docs/SERVICE.md).",
    )
    parser.add_argument(
        "--stdio",
        action="store_true",
        help="serve requests from stdin, answers on stdout (one JSON "
        "object per line); exits at EOF",
    )
    parser.add_argument(
        "--tcp",
        metavar="HOST:PORT",
        default=None,
        help="listen for JSON-lines connections on HOST:PORT",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: half the CPUs, capped at 4)",
    )
    parser.add_argument(
        "--recycle-after",
        type=int,
        default=64,
        metavar="N",
        help="retire and replace a worker after N jobs (default: 64); "
        "memory-budget UNKNOWNs always recycle immediately",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=64,
        metavar="N",
        help="admission cap: with N jobs queued or running, new jobs are "
        "shed as UNKNOWN/overloaded instead of waiting (default: 64)",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        metavar="N",
        help="verdict cache capacity in entries, LRU-evicted (default: "
        "1024)",
    )
    parser.add_argument(
        "--time-limit",
        type=float,
        default=None,
        metavar="S",
        help="default per-request deadline in seconds, applied when the "
        "request carries neither a deadline nor a config time limit",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persist the verdict cache (crash-safe journal) and job "
        "checkpoints under DIR; entries survive restarts (default: "
        "$REPRO_CACHE_DIR, else in-memory only)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="S",
        help="on SIGTERM/SIGINT: shed new work, give in-flight jobs up "
        "to S seconds, fsync the journal, exit with code 3 (default: 10)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="log lifecycle events to stderr",
    )
    args = parser.parse_args(argv)
    if args.stdio == bool(args.tcp):
        print(
            "error: pick exactly one transport: --stdio or --tcp HOST:PORT",
            file=sys.stderr,
        )
        return EXIT_ERROR

    from repro.service import ServiceServer

    cache_dir = args.cache_dir
    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR") or None

    try:
        server = ServiceServer(
            workers=args.workers,
            recycle_after=args.recycle_after,
            max_queue=args.max_queue,
            cache_size=args.cache_size,
            default_time_limit_s=args.time_limit,
            verbose=args.verbose,
            cache_dir=cache_dir,
            drain_timeout_s=args.drain_timeout,
        )
        return server.run(stdio=args.stdio, tcp=args.tcp)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


def _dump(source: str, args) -> int:
    from repro.encoding.encoder import encode_program
    from repro.encoding.export import to_dimacs, to_smtlib
    from repro.frontend import build_symbolic_program
    from repro.lang import parse as parse_program

    sym = build_symbolic_program(
        parse_program(source), unwind=args.unwind, width=args.width
    )
    if args.dump_smt2:
        with open(args.dump_smt2, "w") as f:
            f.write(to_smtlib(sym))
        print(f"wrote {args.dump_smt2}")
    if args.dump_dimacs:
        encoded = encode_program(sym, memory_model=args.memory_model)
        with open(args.dump_dimacs, "w") as f:
            f.write(to_dimacs(encoded))
        print(f"wrote {args.dump_dimacs}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
