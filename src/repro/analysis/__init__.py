"""Static concurrency analysis: MHP + locksets + race detection + pruning.

This layer sits between the frontend (:mod:`repro.frontend`) and the
encoder (:mod:`repro.encoding`).  It serves two purposes:

* a standalone **race report** mode (``repro analyze <file>``) built on
  may-happen-in-parallel and Eraser-style lockset analyses;
* an **encoding pruner** that skips RF/WS ordering variables which are
  false in every model, shrinking ``Φ_ord`` before the solver runs (see
  :mod:`repro.analysis.prune` for the soundness argument and
  ``docs/ANALYSIS.md`` for the full write-up).
"""

from repro.analysis.lockset import (
    ATOMIC_PSEUDO_LOCK,
    LocksetInfo,
    compute_locksets,
    guard_implies,
)
from repro.analysis.mhp import (
    may_happen_in_parallel,
    ordered,
    po_reachability,
    program_reachability,
)
from repro.analysis.prune import MAX_PRUNE_LEVEL, PrunePlan, build_prune_plan
from repro.analysis.races import (
    AnalysisReport,
    PairVerdict,
    RaceWarning,
    analyze_program,
    analyze_symbolic,
    render_report,
)

__all__ = [
    "ATOMIC_PSEUDO_LOCK",
    "AnalysisReport",
    "LocksetInfo",
    "MAX_PRUNE_LEVEL",
    "PairVerdict",
    "PrunePlan",
    "RaceWarning",
    "analyze_program",
    "analyze_symbolic",
    "build_prune_plan",
    "compute_locksets",
    "guard_implies",
    "may_happen_in_parallel",
    "ordered",
    "po_reachability",
    "program_reachability",
    "render_report",
]
