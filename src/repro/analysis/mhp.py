"""May-happen-in-parallel (MHP) analysis over the event-graph skeleton.

Two events may happen in parallel iff neither is program-order-reachable
from the other.  Program order here is the *full* PO skeleton of the
SSA'd program -- intra-thread chains plus the ``start``/``join`` anchor
edges -- so the analysis automatically understands fork/join structure:
everything main does before ``start t`` is ordered before all of ``t``,
and everything after ``join t`` is ordered after all of ``t``.

The reachability representation is one bitmask per event (bit ``j`` of
``reach[i]`` set iff ``j`` is PO-reachable from ``i``), the same shape the
T_ord solver uses internally; it is recomputed here from ``po_edges`` so
the analysis layer does not depend on a constructed theory solver.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.frontend.program import SymbolicProgram

__all__ = [
    "po_reachability",
    "program_reachability",
    "may_happen_in_parallel",
    "ordered",
]


def po_reachability(n: int, po_edges: List[Tuple[int, int]]) -> List[int]:
    """Bitmask per event of all events PO-reachable from it (excl. self).

    Computed by one reverse-topological sweep: O(V + E) bitmask unions.
    """
    out: List[List[int]] = [[] for _ in range(n)]
    indeg = [0] * n
    for a, b in po_edges:
        out[a].append(b)
        indeg[b] += 1
    queue = [i for i in range(n) if indeg[i] == 0]
    order: List[int] = []
    while queue:
        x = queue.pop()
        order.append(x)
        for y in out[x]:
            indeg[y] -= 1
            if indeg[y] == 0:
                queue.append(y)
    assert len(order) == n, "PO skeleton must be acyclic"
    reach = [0] * n
    for x in reversed(order):
        mask = 0
        for y in out[x]:
            mask |= reach[y] | (1 << y)
        reach[x] = mask
    return reach


def program_reachability(sym: SymbolicProgram) -> List[int]:
    """PO reachability bitmasks for a symbolic program."""
    return po_reachability(len(sym.events), sym.po_edges)


def ordered(reach: List[int], a: int, b: int) -> bool:
    """True when ``a`` and ``b`` are ordered by program order (either way)."""
    return bool((reach[a] >> b) & 1 or (reach[b] >> a) & 1)


def may_happen_in_parallel(reach: List[int], a: int, b: int) -> bool:
    """True when neither event is PO-reachable from the other."""
    return not ordered(reach, a, b)
