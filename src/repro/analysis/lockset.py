"""Eraser-style lockset analysis over the SSA'd event lists.

For every memory event the analysis computes the set of locks *definitely*
held when the event executes.  The frontend desugars ``lock(m)`` into an
atomic test-and-set (a READ/WRITE :class:`~repro.frontend.program.RmwGroup`
on a ``lock_addrs`` address) and ``unlock(m)`` into a plain store, so
acquires and releases are recognized structurally:

* an **acquire** is the read event of an RMW group whose address is a
  declared lock;
* a **release** is any write to a lock address that is not part of an
  acquire group.

Each thread's events are straight-line after unrolling, so one in-order
sweep per thread suffices.  Conditional acquires are handled through
guards: a lock acquired under guard ``g`` protects a later event ``e``
only when ``e``'s guard implies ``g`` (syntactic implication over the
hash-consed conjunction structure -- sound, not complete).  Conditional
releases are conservative: any release drops the lock from the held set
regardless of its guard (under-approximating locksets never hides a
race).

``atomic { ... }`` blocks execute indivisibly, i.e. mutually exclusively
with *every other* atomic block, so their events additionally hold the
global pseudo-lock :data:`ATOMIC_PSEUDO_LOCK`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from repro.encoding import formula as F
from repro.encoding.formula import Term
from repro.frontend.program import SymbolicProgram

__all__ = [
    "ATOMIC_PSEUDO_LOCK",
    "LocksetInfo",
    "compute_locksets",
    "guard_implies",
]

#: Pseudo-lock held by every event inside an ``atomic`` block (all atomic
#: blocks are mutually exclusive with each other).
ATOMIC_PSEUDO_LOCK = "<atomic>"


def _conjuncts(g: Term) -> FrozenSet[Term]:
    """The flattened conjunct set of a guard (``mk_and`` flattens nested
    conjunctions, and terms are hash-consed, so identity comparison of
    conjuncts is exact)."""
    if g is F.TRUE:
        return frozenset()
    if g.op == "and":
        return frozenset(g.args)
    return frozenset((g,))


def guard_implies(g: Term, h: Term) -> bool:
    """Syntactic check that guard ``g`` implies guard ``h``.

    True when ``h`` is TRUE, ``g`` is FALSE, or every conjunct of ``h``
    appears among the conjuncts of ``g``.  Sound but incomplete: a False
    answer only means "cannot show the implication".
    """
    if h is F.TRUE or g is h or g is F.FALSE:
        return True
    return _conjuncts(h) <= _conjuncts(g)


class LocksetInfo:
    """Result of the lockset sweep.

    Attributes:
        locksets: eid -> frozenset of lock names (plus the atomic
            pseudo-lock) definitely held at that event.
        acquire_reads: eids of lock-acquire read events (the ``l == 0``
            test of the desugared test-and-set).
        acquire_writes: eids of lock-acquire write events (the ``l = 1``
            store of the test-and-set).
        release_writes: eids of ``unlock`` store events.
    """

    def __init__(self) -> None:
        self.locksets: Dict[int, FrozenSet[str]] = {}
        self.acquire_reads: Set[int] = set()
        self.acquire_writes: Set[int] = set()
        self.release_writes: Set[int] = set()

    def lockset(self, eid: int) -> FrozenSet[str]:
        return self.locksets.get(eid, frozenset())


def compute_locksets(sym: SymbolicProgram) -> LocksetInfo:
    """Per-event locksets for ``sym`` (one linear sweep per thread)."""
    info = LocksetInfo()
    lock_addrs = set(sym.lock_addrs)
    acquire_read_of: Dict[int, str] = {}
    acquire_write_of: Dict[int, str] = {}
    for group in sym.rmw_groups:
        if group.addr in lock_addrs:
            acquire_read_of[group.read_eid] = group.addr
            acquire_write_of[group.write_eid] = group.addr
    info.acquire_reads = set(acquire_read_of)
    info.acquire_writes = set(acquire_write_of)
    atomic_eids: Set[int] = set()
    for region in sym.atomic_regions:
        atomic_eids.update(region)
    # Synthesized init writes (the first events of main) are not releases.
    init_eids: Set[int] = set()
    if sym.threads:
        init_eids = {
            ev.eid for ev in sym.threads[0].events[: len(sym.shared_inits)]
        }

    for thread in sym.threads:
        held: Dict[str, Term] = {}  # lock addr -> guard at acquire
        for ev in thread.events:
            if ev.addr is None:
                continue  # anchors carry no lockset
            # The event's lockset is computed against the *current* held
            # set: acquire events do not protect themselves, release
            # writes are still protected (the critical section extends
            # through the releasing store).
            locks = {
                addr
                for addr, g_acq in held.items()
                if guard_implies(ev.guard, g_acq)
            }
            if ev.eid in atomic_eids:
                locks.add(ATOMIC_PSEUDO_LOCK)
            info.locksets[ev.eid] = frozenset(locks)
            if ev.eid in acquire_read_of:
                held[acquire_read_of[ev.eid]] = ev.guard
            elif (
                ev.is_write
                and ev.addr in lock_addrs
                and ev.eid not in acquire_write_of
                and ev.eid not in init_eids
            ):
                # A release drops the lock even when conditional: smaller
                # locksets stay sound for race detection.
                info.release_writes.add(ev.eid)
                held.pop(ev.addr, None)
    return info
