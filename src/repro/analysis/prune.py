"""Encoding pruner: analysis facts -> RF/WS variables that can be skipped.

The pruner removes only ordering variables that are **false in every
model** of the unpruned formula, so the pruned and unpruned encodings
have exactly the same set of models projected onto the surviving
variables -- verdict equivalence holds by construction.  Three rules:

**PO-WS** (level >= 1).  For a program-order-ordered write pair
``w1 ->po w2`` the reverse variable ``ws(w2, w1)`` is already forced
false by the theory's initial unit clauses (a ws edge whose reverse is
PO-enforced would close a cycle).  We skip creating it; WS-Some shrinks
from ``g1 ∧ g2 -> v12 ∨ v21`` to ``g1 ∧ g2 -> v12``, which is the
original clause minus a false disjunct.

**GUARD-SHADOW** (level >= 1).  ``rf(w, r)`` is forced false whenever
some other write ``w2`` to the same address sits PO-between ``w`` and
``r`` and is enabled whenever the pair is (``guard(w) -> guard(w2)`` or
``guard(r) -> guard(w2)``, checked syntactically): in any model with
``rf(w, r)`` true, both guards hold, hence ``g_{w2}`` holds;
``ws(w2, w)`` is PO-false so WS-Some forces ``ws(w, w2)``; the static
from-read lemma ``rf(w, r) ∧ ws(w, w2) -> false`` (w2 is PO-before r)
closes the contradiction.  This generalizes the encoder's baseline
"definitely shadowed" skip (which requires ``guard(w2)`` to be the
constant TRUE) to conditional code.

**LOCK-VAL** (level >= 2).  A lock-acquire read carries the constraint
``guard -> value == 0`` while a lock-acquire write stores 1; an
``rf`` edge between them would force both guards plus value equality,
i.e. ``0 == 1``.  Such variables are pure overhead and are skipped.
Release writes (value 0) and the init write are *not* pruned as sources.

Levels: 0 = off, 1 = PO/guard rules, 2 = + lock-value rule (default).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Sequence, Set

from repro.analysis.lockset import compute_locksets, guard_implies
from repro.analysis.mhp import program_reachability
from repro.frontend.program import Event, SymbolicProgram
from repro.robustness import checkpoint as _robustness_checkpoint

__all__ = ["PrunePlan", "build_prune_plan", "MAX_PRUNE_LEVEL"]

MAX_PRUNE_LEVEL = 2


@dataclass
class PrunePlan:
    """Precomputed pruning facts consumed by the encoder.

    The encoder consults :meth:`po_ordered` when creating WS variable
    pairs and :meth:`rf_dead` when creating RF variables; a True answer
    means "this variable is false in every model -- skip it".
    """

    level: int
    po_reach: List[int] = field(default_factory=list)
    acquire_reads: Set[int] = field(default_factory=set)
    acquire_writes: Set[int] = field(default_factory=set)
    build_time_s: float = 0.0

    def po_ordered(self, a: int, b: int) -> bool:
        """True when event ``a`` is PO-before event ``b``."""
        return bool((self.po_reach[a] >> b) & 1)

    def rf_dead(self, w: Event, r: Event, writes: Sequence[Event]) -> bool:
        """True when ``rf(w, r)`` is false in every model.

        ``writes`` must be all writes to the pair's address (the
        encoder's per-address write list).
        """
        if (
            self.level >= 2
            and r.eid in self.acquire_reads
            and w.eid in self.acquire_writes
        ):
            return True  # LOCK-VAL: acquire read (==0) vs acquire write (=1)
        for w2 in writes:
            if w2.eid == w.eid or w2.eid == r.eid:
                continue
            if not self.po_ordered(w.eid, w2.eid):
                continue
            if not self.po_ordered(w2.eid, r.eid):
                continue
            if guard_implies(w.guard, w2.guard) or guard_implies(
                r.guard, w2.guard
            ):
                return True  # GUARD-SHADOW
        return False


def build_prune_plan(sym: SymbolicProgram, level: int) -> PrunePlan:
    """Run the analyses backing a :class:`PrunePlan` at ``level``."""
    t0 = time.perf_counter()
    _robustness_checkpoint("analysis", events=len(sym.events))
    plan = PrunePlan(level=min(level, MAX_PRUNE_LEVEL))
    if plan.level <= 0:
        return plan
    plan.po_reach = program_reachability(sym)
    if plan.level >= 2:
        locks = compute_locksets(sym)
        plan.acquire_reads = locks.acquire_reads
        plan.acquire_writes = locks.acquire_writes
    plan.build_time_s = time.perf_counter() - t0
    return plan
