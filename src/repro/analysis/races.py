"""Static race detector: MHP x lockset -> per-address-pair verdicts.

For every pair of same-address events with at least one write (lock
addresses excluded -- sync objects are contended by design) the detector
classifies:

* ``ordered``    -- the events are ordered by program order (including
  ``start``/``join`` anchor edges), so they can never race;
* ``protected``  -- they may run in parallel but share a common lock (or
  both sit inside ``atomic`` blocks);
* ``racy``       -- neither holds: a candidate data race.

``racy`` pairs become source-located warnings (deduplicated per pair of
source statements).  The verdicts also drive encoding pruning indirectly:
:mod:`repro.analysis.prune` consumes the same MHP/lockset facts.

The analysis is *may*-race: guards are treated conservatively (an event
that could be disabled still counts), so a clean report is a strong
"no race" claim while a warning may be a false positive on programs whose
synchronization is value-dependent in ways locksets cannot see.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.lockset import LocksetInfo, compute_locksets
from repro.analysis.mhp import may_happen_in_parallel, program_reachability
from repro.frontend.program import Event, SymbolicProgram
from repro.lang import ast
from repro.lang.parser import parse
from repro.lang.unparse import unparse_stmt

__all__ = [
    "AnalysisReport",
    "PairVerdict",
    "RaceWarning",
    "analyze_program",
    "analyze_symbolic",
    "render_report",
]

VERDICT_ORDERED = "ordered"
VERDICT_PROTECTED = "protected"
VERDICT_RACY = "racy"


@dataclass(frozen=True)
class PairVerdict:
    """Classification of one conflicting event pair."""

    addr: str
    eid_a: int
    eid_b: int
    verdict: str  # ordered | protected | racy
    common_locks: Tuple[str, ...] = ()


@dataclass(frozen=True)
class RaceWarning:
    """A candidate data race, located at its two source statements."""

    addr: str
    thread_a: str
    thread_b: str
    pos_a: Optional[Tuple[int, int]]
    pos_b: Optional[Tuple[int, int]]
    source_a: str
    source_b: str
    both_writes: bool

    def describe(self, filename: str = "") -> str:
        where = f"{filename}:" if filename else "line "

        def loc(pos: Optional[Tuple[int, int]]) -> str:
            return f"{where}{pos[0]}" if pos else "<synthesized>"

        kind = "write/write" if self.both_writes else "read/write"
        return (
            f"race on '{self.addr}' ({kind}):\n"
            f"  {loc(self.pos_a)}: [{self.thread_a}] {self.source_a}\n"
            f"  {loc(self.pos_b)}: [{self.thread_b}] {self.source_b}"
        )

    def to_dict(self) -> Dict:
        """JSON-ready form (the ``analyze`` wire format of the service)."""
        return {
            "addr": self.addr,
            "thread_a": self.thread_a,
            "thread_b": self.thread_b,
            "pos_a": None if self.pos_a is None else list(self.pos_a),
            "pos_b": None if self.pos_b is None else list(self.pos_b),
            "source_a": self.source_a,
            "source_b": self.source_b,
            "both_writes": self.both_writes,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "RaceWarning":
        pos_a = data.get("pos_a")
        pos_b = data.get("pos_b")
        return cls(
            addr=data["addr"],
            thread_a=data["thread_a"],
            thread_b=data["thread_b"],
            pos_a=None if pos_a is None else (pos_a[0], pos_a[1]),
            pos_b=None if pos_b is None else (pos_b[0], pos_b[1]),
            source_a=data["source_a"],
            source_b=data["source_b"],
            both_writes=data["both_writes"],
        )


@dataclass
class AnalysisReport:
    """Full output of :func:`analyze_symbolic`."""

    verdicts: List[PairVerdict] = field(default_factory=list)
    warnings: List[RaceWarning] = field(default_factory=list)
    pairs_total: int = 0
    pairs_ordered: int = 0
    pairs_protected: int = 0
    pairs_racy: int = 0
    analysis_time_s: float = 0.0

    @property
    def has_races(self) -> bool:
        return bool(self.warnings)


def _source_of(ev: Event) -> str:
    stmt = ev.stmt
    if stmt is None:
        return ev.label or f"{ev.kind} {ev.addr}"
    try:
        return unparse_stmt(stmt)[0].strip()
    except Exception:
        return ev.label or f"{ev.kind} {ev.addr}"


def analyze_symbolic(sym: SymbolicProgram) -> AnalysisReport:
    """Race-classify every conflicting pair of ``sym``'s memory events."""
    t0 = time.perf_counter()
    report = AnalysisReport()
    reach = program_reachability(sym)
    locks: LocksetInfo = compute_locksets(sym)
    lock_addrs = set(sym.lock_addrs)

    by_addr: Dict[str, List[Event]] = {}
    for ev in sym.memory_events():
        if ev.addr is not None and ev.addr not in lock_addrs:
            by_addr.setdefault(ev.addr, []).append(ev)

    seen_warnings = set()
    for addr in sorted(by_addr):
        events = by_addr[addr]
        for i, a in enumerate(events):
            for b in events[i + 1 :]:
                if not (a.is_write or b.is_write):
                    continue
                if a.thread == b.thread:
                    continue  # intra-thread pairs are always PO-ordered
                report.pairs_total += 1
                if not may_happen_in_parallel(reach, a.eid, b.eid):
                    report.pairs_ordered += 1
                    report.verdicts.append(
                        PairVerdict(addr, a.eid, b.eid, VERDICT_ORDERED)
                    )
                    continue
                common = locks.lockset(a.eid) & locks.lockset(b.eid)
                if common:
                    report.pairs_protected += 1
                    report.verdicts.append(
                        PairVerdict(
                            addr,
                            a.eid,
                            b.eid,
                            VERDICT_PROTECTED,
                            tuple(sorted(common)),
                        )
                    )
                    continue
                report.pairs_racy += 1
                report.verdicts.append(
                    PairVerdict(addr, a.eid, b.eid, VERDICT_RACY)
                )
                first, second = sorted(
                    (a, b), key=lambda e: (e.pos or (0, 0), e.thread)
                )
                key = (addr, first.pos, second.pos, first.thread, second.thread)
                if key in seen_warnings:
                    continue
                seen_warnings.add(key)
                report.warnings.append(
                    RaceWarning(
                        addr=addr,
                        thread_a=first.thread,
                        thread_b=second.thread,
                        pos_a=first.pos,
                        pos_b=second.pos,
                        source_a=_source_of(first),
                        source_b=_source_of(second),
                        both_writes=a.is_write and b.is_write,
                    )
                )
    report.analysis_time_s = time.perf_counter() - t0
    return report


def analyze_program(
    source_or_ast: Union[str, ast.Program],
    unwind: int = 8,
    width: int = 8,
) -> AnalysisReport:
    """Parse (if needed), lower, and race-analyze a program."""
    from repro.frontend.ssa import build_symbolic_program

    program = (
        parse(source_or_ast)
        if isinstance(source_or_ast, str)
        else source_or_ast
    )
    sym = build_symbolic_program(program, unwind=unwind, width=width)
    return analyze_symbolic(sym)


def render_report(report: AnalysisReport, filename: str = "") -> str:
    """Human-readable race report."""
    lines = [
        f"conflicting pairs: {report.pairs_total} "
        f"(ordered {report.pairs_ordered}, "
        f"protected {report.pairs_protected}, "
        f"racy {report.pairs_racy})",
    ]
    if not report.warnings:
        lines.append("no data races found")
    else:
        n = len(report.warnings)
        lines.append(f"{n} potential data race{'s' if n != 1 else ''}:")
        for w in report.warnings:
            lines.append(w.describe(filename))
    return "\n".join(lines)
