"""Hand-written lexer for the mini concurrent language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

KEYWORDS = {
    "int", "lock", "unlock", "thread", "main", "if", "else", "while",
    "assert", "assume", "atomic", "start", "join", "skip", "nondet",
    "fence", "true", "false",
}

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "&&", "||", "==", "!=", "<=", ">=",
    "+", "-", "*", "&", "|", "^", "!", "~", "<", ">", "=",
    "(", ")", "{", "}", ";", ",",
]


class LexError(ValueError):
    """Raised on unrecognized input."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{line}:{col}: {message}")
        self.line = line
        self.col = col


@dataclass(frozen=True)
class Token:
    kind: str  # 'int_lit', 'ident', 'kw', 'op', 'eof'
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind},{self.text!r}@{self.line}:{self.col})"


def tokenize(source: str) -> List[Token]:
    """Lex ``source`` into a token list ending with an ``eof`` token."""
    tokens: List[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexError("unterminated block comment", line, col)
            skipped = source[i : end + 2]
            newlines = skipped.count("\n")
            if newlines:
                line += newlines
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue
        if ch.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            tokens.append(Token("int_lit", source[i:j], line, col))
            col += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, col))
            col += j - i
            i = j
            continue
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, col))
                i += len(op)
                col += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token("eof", "", line, col))
    return tokens
