"""Mini concurrent language front end.

The input language is a small C-like language with POSIX-thread-flavoured
concurrency, sufficient to express the SV-COMP-style and Nidhugg-style
benchmarks the paper evaluates on::

    int x = 0, y = 0;
    lock m;

    thread t1 {
        int a;
        a = x + 1;       // reads shared x, writes local a
        lock(m);
        y = a;           // writes shared y
        unlock(m);
    }

    thread t2 {
        atomic { x = y + 1; }
    }

    main {
        start t1;
        start t2;
        join t1;
        join t2;
        assert(!(x == 1 && y == 1));
    }

Shared (global) variables are plain ``int`` declarations at the top level;
``int`` declarations inside a thread are thread-local.  Each *shared* access
is an individually scheduled memory event (the granularity both the SMT
encoding and the stateless-model-checking interpreter agree on).
"""

from repro.lang.ast import (
    Assert,
    Assign,
    Assume,
    Atomic,
    Binary,
    GlobalDecl,
    If,
    IntLit,
    Join,
    LocalDecl,
    Lock,
    Nondet,
    Program,
    Skip,
    Start,
    ThreadDef,
    Unary,
    Unlock,
    VarRef,
    While,
)
from repro.lang.lexer import LexError, tokenize
from repro.lang.parser import ParseError, parse
from repro.lang.sema import SemanticError, check_program

__all__ = [
    "Program", "GlobalDecl", "ThreadDef",
    "LocalDecl", "Assign", "If", "While", "Assert", "Assume",
    "Lock", "Unlock", "Atomic", "Start", "Join", "Skip",
    "IntLit", "VarRef", "Unary", "Binary", "Nondet",
    "tokenize", "LexError", "parse", "ParseError",
    "check_program", "SemanticError",
]
