"""Recursive-descent parser for the mini concurrent language.

Expression parsing uses precedence climbing with C-like precedence::

    ||  <  &&  <  |  <  ^  <  &  <  ==/!=  <  < <= > >=  <  +/-  <  *
    unary: - ! ~
"""

from __future__ import annotations

from typing import List, Optional

from repro.lang import ast
from repro.lang.lexer import Token, tokenize

__all__ = ["parse", "ParseError"]

#: Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "+": 8, "-": 8,
    "*": 9,
}


class ParseError(ValueError):
    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"{token.line}:{token.col}: {message} (got {token.text!r})")
        self.token = token


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.cur
        self.pos += 1
        return tok

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self.cur
        return tok.kind == kind and (text is None or tok.text == text)

    def at_kw(self, word: str) -> bool:
        return self.at("kw", word)

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self.at(kind, text):
            want = text if text is not None else kind
            raise ParseError(f"expected {want!r}", self.cur)
        return self.advance()

    def expect_op(self, text: str) -> Token:
        return self.expect("op", text)

    def expect_kw(self, word: str) -> Token:
        return self.expect("kw", word)

    # -- top level ------------------------------------------------------

    def parse_program(self) -> ast.Program:
        globals_: List[ast.GlobalDecl] = []
        threads: List[ast.ThreadDef] = []
        main: Optional[ast.ThreadDef] = None
        while not self.at("eof"):
            if self.at_kw("int"):
                globals_.extend(self.parse_global_int())
            elif self.at_kw("lock") and self.tokens[self.pos + 1].kind == "ident":
                tok = self.advance()
                name = self.expect("ident").text
                self.expect_op(";")
                globals_.append(
                    ast.GlobalDecl(name, init=0, is_lock=True, pos=(tok.line, tok.col))
                )
            elif self.at_kw("thread"):
                threads.append(self.parse_thread())
            elif self.at_kw("main"):
                if main is not None:
                    raise ParseError("duplicate main block", self.cur)
                tok = self.advance()
                body = self.parse_block()
                main = ast.ThreadDef("main", body, pos=(tok.line, tok.col))
            else:
                raise ParseError("expected declaration, thread, or main", self.cur)
        return ast.Program(globals_, threads, main)

    def parse_global_int(self) -> List[ast.GlobalDecl]:
        self.expect_kw("int")
        decls = []
        while True:
            tok = self.expect("ident")
            init = 0
            if self.at("op", "="):
                self.advance()
                neg = False
                if self.at("op", "-"):
                    self.advance()
                    neg = True
                lit = self.expect("int_lit")
                init = -int(lit.text) if neg else int(lit.text)
            decls.append(ast.GlobalDecl(tok.text, init=init, pos=(tok.line, tok.col)))
            if self.at("op", ","):
                self.advance()
                continue
            break
        self.expect_op(";")
        return decls

    def parse_thread(self) -> ast.ThreadDef:
        tok = self.expect_kw("thread")
        name = self.expect("ident").text
        body = self.parse_block()
        return ast.ThreadDef(name, body, pos=(tok.line, tok.col))

    # -- statements -----------------------------------------------------

    def parse_block(self) -> List[ast.Stmt]:
        self.expect_op("{")
        body: List[ast.Stmt] = []
        while not self.at("op", "}"):
            body.append(self.parse_stmt())
        self.expect_op("}")
        return body

    def parse_stmt(self) -> ast.Stmt:
        tok = self.cur
        pos = (tok.line, tok.col)
        if self.at_kw("int"):
            self.advance()
            name = self.expect("ident").text
            init = None
            if self.at("op", "="):
                self.advance()
                init = self.parse_expr()
            self.expect_op(";")
            return ast.LocalDecl(name, init, pos=pos)
        if self.at_kw("if"):
            self.advance()
            self.expect_op("(")
            cond = self.parse_expr()
            self.expect_op(")")
            then_body = self.parse_block()
            else_body: List[ast.Stmt] = []
            if self.at_kw("else"):
                self.advance()
                if self.at_kw("if"):
                    else_body = [self.parse_stmt()]
                else:
                    else_body = self.parse_block()
            return ast.If(cond, then_body, else_body, pos=pos)
        if self.at_kw("while"):
            self.advance()
            self.expect_op("(")
            cond = self.parse_expr()
            self.expect_op(")")
            body = self.parse_block()
            return ast.While(cond, body, pos=pos)
        if self.at_kw("assert"):
            self.advance()
            self.expect_op("(")
            cond = self.parse_expr()
            self.expect_op(")")
            self.expect_op(";")
            return ast.Assert(cond, pos=pos)
        if self.at_kw("assume"):
            self.advance()
            self.expect_op("(")
            cond = self.parse_expr()
            self.expect_op(")")
            self.expect_op(";")
            return ast.Assume(cond, pos=pos)
        if self.at_kw("lock"):
            self.advance()
            self.expect_op("(")
            name = self.expect("ident").text
            self.expect_op(")")
            self.expect_op(";")
            return ast.Lock(name, pos=pos)
        if self.at_kw("unlock"):
            self.advance()
            self.expect_op("(")
            name = self.expect("ident").text
            self.expect_op(")")
            self.expect_op(";")
            return ast.Unlock(name, pos=pos)
        if self.at_kw("atomic"):
            self.advance()
            body = self.parse_block()
            return ast.Atomic(body, pos=pos)
        if self.at_kw("start"):
            self.advance()
            name = self.expect("ident").text
            self.expect_op(";")
            return ast.Start(name, pos=pos)
        if self.at_kw("join"):
            self.advance()
            name = self.expect("ident").text
            self.expect_op(";")
            return ast.Join(name, pos=pos)
        if self.at_kw("skip"):
            self.advance()
            self.expect_op(";")
            return ast.Skip(pos=pos)
        if self.at_kw("fence"):
            self.advance()
            self.expect_op(";")
            return ast.Fence(pos=pos)
        if self.at("ident"):
            name = self.advance().text
            self.expect_op("=")
            value = self.parse_expr()
            self.expect_op(";")
            return ast.Assign(name, value, pos=pos)
        raise ParseError("expected statement", tok)

    # -- expressions ----------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self.parse_binary(1)

    def parse_binary(self, min_prec: int) -> ast.Expr:
        left = self.parse_unary()
        while self.at("op") and self.cur.text in _PRECEDENCE:
            op = self.cur.text
            prec = _PRECEDENCE[op]
            if prec < min_prec:
                break
            tok = self.advance()
            right = self.parse_binary(prec + 1)
            left = ast.Binary(op, left, right, pos=(tok.line, tok.col))
        return left

    def parse_unary(self) -> ast.Expr:
        tok = self.cur
        if self.at("op") and tok.text in ("-", "!", "~"):
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(tok.text, operand, pos=(tok.line, tok.col))
        return self.parse_primary()

    def parse_primary(self) -> ast.Expr:
        tok = self.cur
        pos = (tok.line, tok.col)
        if self.at("int_lit"):
            self.advance()
            return ast.IntLit(int(tok.text), pos=pos)
        if self.at_kw("true"):
            self.advance()
            return ast.IntLit(1, pos=pos)
        if self.at_kw("false"):
            self.advance()
            return ast.IntLit(0, pos=pos)
        if self.at_kw("nondet"):
            self.advance()
            self.expect_op("(")
            self.expect_op(")")
            return ast.Nondet(pos=pos)
        if self.at("ident"):
            self.advance()
            return ast.VarRef(tok.text, pos=pos)
        if self.at("op", "("):
            self.advance()
            inner = self.parse_expr()
            self.expect_op(")")
            return inner
        raise ParseError("expected expression", tok)


def parse(source: str) -> ast.Program:
    """Parse ``source`` into a :class:`repro.lang.ast.Program`."""
    parser = _Parser(tokenize(source))
    return parser.parse_program()
