"""AST node definitions for the mini concurrent language.

All nodes are plain frozen dataclasses.  Expressions and statements carry an
optional source position ``(line, col)`` for error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

Pos = Optional[Tuple[int, int]]


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Expr:
    pass


@dataclass(frozen=True)
class IntLit(Expr):
    value: int
    pos: Pos = None

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class VarRef(Expr):
    name: str
    pos: Pos = None

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Nondet(Expr):
    """A nondeterministic int (``nondet()``), unconstrained in the encoding."""

    pos: Pos = None

    def __str__(self) -> str:
        return "nondet()"


@dataclass(frozen=True)
class Unary(Expr):
    op: str  # '-', '!', '~'
    operand: Expr
    pos: Pos = None

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"


@dataclass(frozen=True)
class Binary(Expr):
    op: str  # + - * & | ^ && || == != < <= > >=
    left: Expr
    right: Expr
    pos: Pos = None

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Stmt:
    pass


@dataclass(frozen=True)
class LocalDecl(Stmt):
    name: str
    init: Optional[Expr] = None
    pos: Pos = None


@dataclass(frozen=True)
class Assign(Stmt):
    name: str
    value: Expr
    pos: Pos = None


@dataclass(frozen=True)
class If(Stmt):
    cond: Expr
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)
    pos: Pos = None


@dataclass(frozen=True)
class While(Stmt):
    cond: Expr
    body: List[Stmt] = field(default_factory=list)
    pos: Pos = None


@dataclass(frozen=True)
class Assert(Stmt):
    cond: Expr
    pos: Pos = None


@dataclass(frozen=True)
class Assume(Stmt):
    cond: Expr
    pos: Pos = None


@dataclass(frozen=True)
class Lock(Stmt):
    name: str
    pos: Pos = None


@dataclass(frozen=True)
class Unlock(Stmt):
    name: str
    pos: Pos = None


@dataclass(frozen=True)
class Atomic(Stmt):
    body: List[Stmt] = field(default_factory=list)
    pos: Pos = None


@dataclass(frozen=True)
class Start(Stmt):
    thread: str
    pos: Pos = None


@dataclass(frozen=True)
class Join(Stmt):
    thread: str
    pos: Pos = None


@dataclass(frozen=True)
class Skip(Stmt):
    pos: Pos = None


@dataclass(frozen=True)
class Fence(Stmt):
    """A full memory fence: orders all surrounding accesses under weak
    memory models (a no-op under sequential consistency)."""

    pos: Pos = None


# ----------------------------------------------------------------------
# Top level
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class GlobalDecl:
    """A shared variable (``int x = 0;``) or a mutex (``lock m;``)."""

    name: str
    init: int = 0
    is_lock: bool = False
    pos: Pos = None


@dataclass(frozen=True)
class ThreadDef:
    name: str
    body: List[Stmt] = field(default_factory=list)
    pos: Pos = None


@dataclass(frozen=True)
class Program:
    globals: List[GlobalDecl] = field(default_factory=list)
    threads: List[ThreadDef] = field(default_factory=list)
    main: Optional[ThreadDef] = None

    def global_names(self) -> List[str]:
        return [g.name for g in self.globals]

    def thread_named(self, name: str) -> ThreadDef:
        for t in self.threads:
            if t.name == name:
                return t
        raise KeyError(name)
