"""AST pretty-printer (unparser).

``unparse(parse(src))`` produces normalized, re-parseable source; the
round-trip ``parse(unparse(p)) == p`` (modulo positions) is property-tested.
Used by tooling that rewrites or generates programs.
"""

from __future__ import annotations

from typing import List

from repro.lang import ast

__all__ = ["unparse", "unparse_expr", "unparse_stmt"]

_INDENT = "    "


def unparse(program: ast.Program) -> str:
    """Render a whole program."""
    parts: List[str] = []
    ints = [g for g in program.globals if not g.is_lock]
    locks = [g for g in program.globals if g.is_lock]
    if ints:
        decls = ", ".join(
            f"{g.name} = {g.init}" if g.init != 0 else g.name for g in ints
        )
        parts.append(f"int {decls};")
    for g in locks:
        parts.append(f"lock {g.name};")
    for t in program.threads:
        parts.append("")
        parts.append(f"thread {t.name} {{")
        parts.extend(_block(t.body, 1))
        parts.append("}")
    if program.main is not None:
        parts.append("")
        parts.append("main {")
        parts.extend(_block(program.main.body, 1))
        parts.append("}")
    return "\n".join(parts) + "\n"


def _block(stmts: List[ast.Stmt], depth: int) -> List[str]:
    out: List[str] = []
    for s in stmts:
        out.extend(unparse_stmt(s, depth))
    return out


def unparse_stmt(stmt: ast.Stmt, depth: int = 0) -> List[str]:
    """Render one statement as indented lines."""
    pad = _INDENT * depth
    if isinstance(stmt, ast.LocalDecl):
        if stmt.init is None:
            return [f"{pad}int {stmt.name};"]
        return [f"{pad}int {stmt.name} = {unparse_expr(stmt.init)};"]
    if isinstance(stmt, ast.Assign):
        return [f"{pad}{stmt.name} = {unparse_expr(stmt.value)};"]
    if isinstance(stmt, ast.If):
        lines = [f"{pad}if ({unparse_expr(stmt.cond)}) {{"]
        lines.extend(_block(stmt.then_body, depth + 1))
        if stmt.else_body:
            lines.append(f"{pad}}} else {{")
            lines.extend(_block(stmt.else_body, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ast.While):
        lines = [f"{pad}while ({unparse_expr(stmt.cond)}) {{"]
        lines.extend(_block(stmt.body, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ast.Assert):
        return [f"{pad}assert({unparse_expr(stmt.cond)});"]
    if isinstance(stmt, ast.Assume):
        return [f"{pad}assume({unparse_expr(stmt.cond)});"]
    if isinstance(stmt, ast.Lock):
        return [f"{pad}lock({stmt.name});"]
    if isinstance(stmt, ast.Unlock):
        return [f"{pad}unlock({stmt.name});"]
    if isinstance(stmt, ast.Atomic):
        lines = [f"{pad}atomic {{"]
        lines.extend(_block(stmt.body, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ast.Start):
        return [f"{pad}start {stmt.thread};"]
    if isinstance(stmt, ast.Join):
        return [f"{pad}join {stmt.thread};"]
    if isinstance(stmt, ast.Skip):
        return [f"{pad}skip;"]
    if isinstance(stmt, ast.Fence):
        return [f"{pad}fence;"]
    raise TypeError(f"cannot unparse {type(stmt).__name__}")


#: Binary operator precedence, mirroring the parser.
_PRECEDENCE = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "+": 8, "-": 8, "*": 9,
}
_UNARY_PREC = 10


def unparse_expr(expr: ast.Expr, parent_prec: int = 0) -> str:
    """Render an expression with minimal parentheses."""
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.VarRef):
        return expr.name
    if isinstance(expr, ast.Nondet):
        return "nondet()"
    if isinstance(expr, ast.Unary):
        inner = unparse_expr(expr.operand, _UNARY_PREC)
        text = f"{expr.op}{inner}"
        return f"({text})" if parent_prec > _UNARY_PREC else text
    if isinstance(expr, ast.Binary):
        prec = _PRECEDENCE[expr.op]
        # Left-associative: the right child needs a strictly higher bound.
        left = unparse_expr(expr.left, prec)
        right = unparse_expr(expr.right, prec + 1)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if parent_prec > prec else text
    raise TypeError(f"cannot unparse {type(expr).__name__}")
