"""Semantic checks for the mini concurrent language.

Checks performed (each violation raises :class:`SemanticError`):

* globals and threads have unique names; locals don't shadow globals or
  other locals in the same thread;
* every variable reference is declared (global, or local declared earlier
  in the same thread body);
* lock variables are only used in ``lock``/``unlock`` and never read or
  assigned directly;
* ``start``/``join`` appear only in ``main``, name a declared thread,
  ``start`` precedes ``join``, and each thread is started/joined at most
  once;
* ``atomic`` blocks contain straight-line code only (no ``if``/``while``/
  nested ``atomic``), matching the fragment the RMW-adjacency encoding
  supports;
* asserts appear only outside atomic blocks.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.lang import ast

__all__ = ["SemanticError", "check_program"]


class SemanticError(ValueError):
    pass


def _err(message: str, pos) -> SemanticError:
    if pos:
        return SemanticError(f"{pos[0]}:{pos[1]}: {message}")
    return SemanticError(message)


def check_program(program: ast.Program) -> None:
    """Validate ``program``; raises :class:`SemanticError` on violation."""
    shared: Set[str] = set()
    locks: Set[str] = set()
    for g in program.globals:
        if g.name in shared or g.name in locks:
            raise _err(f"duplicate global {g.name!r}", g.pos)
        (locks if g.is_lock else shared).add(g.name)

    thread_names: Set[str] = set()
    for t in program.threads:
        if t.name in thread_names:
            raise _err(f"duplicate thread {t.name!r}", t.pos)
        if t.name == "main":
            raise _err("thread cannot be named 'main'", t.pos)
        thread_names.add(t.name)

    for t in program.threads:
        _check_body(t, t.body, shared, locks, set(), in_main=False, in_atomic=False)
    if program.main is not None:
        _check_main(program.main, shared, locks, thread_names)


def _check_main(
    main: ast.ThreadDef, shared: Set[str], locks: Set[str], threads: Set[str]
) -> None:
    started: Set[str] = set()
    joined: Set[str] = set()
    # start/join must be unconditional, i.e. at the top level of main.
    for s in main.body:
        if isinstance(s, ast.Start):
            if s.thread not in threads:
                raise _err(f"start of unknown thread {s.thread!r}", s.pos)
            if s.thread in started:
                raise _err(f"thread {s.thread!r} started twice", s.pos)
            started.add(s.thread)
        elif isinstance(s, ast.Join):
            if s.thread not in started:
                raise _err(f"join of thread {s.thread!r} before start", s.pos)
            if s.thread in joined:
                raise _err(f"thread {s.thread!r} joined twice", s.pos)
            joined.add(s.thread)
        elif isinstance(s, (ast.If, ast.While, ast.Atomic)) and _contains_start_join(s):
            raise _err("start/join must be unconditional (top level of main)", s.pos)
    # Ordinary statement checks (start/join accepted in main).
    locals_: Set[str] = set()
    _check_body(
        main, main.body, shared, locks, locals_, in_main=True, in_atomic=False
    )


def _contains_start_join(stmt: ast.Stmt) -> bool:
    stack: List[ast.Stmt] = [stmt]
    while stack:
        s = stack.pop()
        if isinstance(s, (ast.Start, ast.Join)):
            return True
        if isinstance(s, ast.If):
            stack.extend(s.then_body)
            stack.extend(s.else_body)
        elif isinstance(s, ast.While):
            stack.extend(s.body)
        elif isinstance(s, ast.Atomic):
            stack.extend(s.body)
    return False


def _check_body(
    thread: ast.ThreadDef,
    stmts: List[ast.Stmt],
    shared: Set[str],
    locks: Set[str],
    locals_: Set[str],
    in_main: bool,
    in_atomic: bool,
) -> None:
    for s in stmts:
        if isinstance(s, ast.LocalDecl):
            if s.name in shared or s.name in locks:
                raise _err(f"local {s.name!r} shadows a global", s.pos)
            if s.name in locals_:
                raise _err(f"duplicate local {s.name!r}", s.pos)
            locals_.add(s.name)
            if s.init is not None:
                _check_expr(s.init, shared, locks, locals_)
        elif isinstance(s, ast.Assign):
            if s.name in locks:
                raise _err(f"cannot assign to lock {s.name!r}", s.pos)
            if s.name not in shared and s.name not in locals_:
                raise _err(f"assignment to undeclared variable {s.name!r}", s.pos)
            _check_expr(s.value, shared, locks, locals_)
        elif isinstance(s, ast.If):
            if in_atomic:
                raise _err("branching inside atomic block", s.pos)
            _check_expr(s.cond, shared, locks, locals_)
            _check_body(thread, s.then_body, shared, locks, locals_, in_main, in_atomic)
            _check_body(thread, s.else_body, shared, locks, locals_, in_main, in_atomic)
        elif isinstance(s, ast.While):
            if in_atomic:
                raise _err("loop inside atomic block", s.pos)
            _check_expr(s.cond, shared, locks, locals_)
            _check_body(thread, s.body, shared, locks, locals_, in_main, in_atomic)
        elif isinstance(s, (ast.Assert, ast.Assume)):
            if in_atomic and isinstance(s, ast.Assert):
                raise _err("assert inside atomic block", s.pos)
            _check_expr(s.cond, shared, locks, locals_)
        elif isinstance(s, (ast.Lock, ast.Unlock)):
            if in_atomic:
                raise _err("lock/unlock inside atomic block", s.pos)
            if s.name not in locks:
                raise _err(f"{s.name!r} is not a declared lock", s.pos)
        elif isinstance(s, ast.Atomic):
            if in_atomic:
                raise _err("nested atomic block", s.pos)
            _check_atomic_accesses(s, shared)
            _check_body(thread, s.body, shared, locks, locals_, in_main, True)
        elif isinstance(s, (ast.Start, ast.Join)):
            if not in_main:
                raise _err("start/join outside main", s.pos)
        elif isinstance(s, (ast.Skip, ast.Fence)):
            pass
        else:  # pragma: no cover - defensive
            raise _err(f"unknown statement {type(s).__name__}", getattr(s, "pos", None))


def _check_atomic_accesses(block: ast.Atomic, shared: Set[str]) -> None:
    """Atomic blocks must be read-modify-write shaped: at most one shared
    variable, with at most one read and at most one write of it.  This is the
    fragment the encoder's RMW-adjacency constraints capture exactly."""
    reads: List[str] = []
    writes: List[str] = []

    def walk_expr(e: ast.Expr) -> None:
        if isinstance(e, ast.VarRef) and e.name in shared:
            reads.append(e.name)
        elif isinstance(e, ast.Nondet):
            raise _err("nondet() inside atomic block", block.pos)
        elif isinstance(e, ast.Unary):
            walk_expr(e.operand)
        elif isinstance(e, ast.Binary):
            walk_expr(e.left)
            walk_expr(e.right)

    for s in block.body:
        if isinstance(s, ast.Assign):
            walk_expr(s.value)
            if s.name in shared:
                writes.append(s.name)
        elif isinstance(s, (ast.Assume,)):
            walk_expr(s.cond)
        elif isinstance(s, ast.LocalDecl) and s.init is not None:
            walk_expr(s.init)

    touched = set(reads) | set(writes)
    if len(touched) > 1:
        raise _err(
            f"atomic block touches multiple shared variables {sorted(touched)}",
            block.pos,
        )
    if len(reads) > 1 or len(writes) > 1:
        raise _err(
            "atomic block must contain at most one shared read and one "
            "shared write (read-modify-write shape)",
            block.pos,
        )


def _check_expr(
    expr: ast.Expr, shared: Set[str], locks: Set[str], locals_: Set[str]
) -> None:
    if isinstance(expr, (ast.IntLit, ast.Nondet)):
        return
    if isinstance(expr, ast.VarRef):
        if expr.name in locks:
            raise _err(f"lock {expr.name!r} used as a value", expr.pos)
        if expr.name not in shared and expr.name not in locals_:
            raise _err(f"undeclared variable {expr.name!r}", expr.pos)
        return
    if isinstance(expr, ast.Unary):
        _check_expr(expr.operand, shared, locks, locals_)
        return
    if isinstance(expr, ast.Binary):
        _check_expr(expr.left, shared, locks, locals_)
        _check_expr(expr.right, shared, locks, locals_)
        return
    raise _err(f"unknown expression {type(expr).__name__}", getattr(expr, "pos", None))
