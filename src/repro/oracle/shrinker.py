"""Delta-debugging shrinker for failing fuzz programs.

Given a program and a *predicate* ("this program still reproduces the
failure"), :func:`shrink` greedily applies structural reductions --
dropping whole threads, ddmin-style removal of statement chunks,
hoisting ``if``/``while``/``atomic`` bodies, simplifying expressions to
sub-expressions or literals, and dropping unused globals -- accepting a
candidate whenever it still parses, passes the semantic checker and
satisfies the predicate.  The loop runs to a fixpoint (no single
reduction applies) or until ``max_checks`` predicate evaluations.

The predicate is treated as a black box and is typically "re-run the
engine matrix and observe the same disagreement"; the shrinker itself
never interprets verdicts.  All candidates are valid programs by
construction of the check, so the minimized artifact is directly usable
as a regression test.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator, List, Optional, Tuple

from repro.lang import ast

__all__ = ["shrink", "shrink_source"]

#: A block address: ("main",) or ("thread", i), then a path of
#: (stmt_index, field) pairs descending into compound statements.
_Path = Tuple[Tuple[int, str], ...]

_BODY_FIELDS = {
    ast.If: ("then_body", "else_body"),
    ast.While: ("body",),
    ast.Atomic: ("body",),
}


def _iter_blocks(program: ast.Program) -> Iterator[Tuple[Tuple, _Path, List[ast.Stmt]]]:
    """Yield every statement block as ``(owner, path, stmts)``."""

    def walk(owner, path: _Path, stmts: List[ast.Stmt]):
        yield owner, path, stmts
        for i, s in enumerate(stmts):
            for field in _BODY_FIELDS.get(type(s), ()):
                yield from walk(owner, path + ((i, field),), getattr(s, field))

    for ti, t in enumerate(program.threads):
        yield from walk(("thread", ti), (), t.body)
    if program.main is not None:
        yield from walk(("main",), (), program.main.body)


def _rebuild_block(stmts: List[ast.Stmt], path: _Path, new: List[ast.Stmt]) -> List[ast.Stmt]:
    if not path:
        return list(new)
    (idx, field), rest = path[0], path[1:]
    out = list(stmts)
    out[idx] = replace(out[idx], **{field: _rebuild_block(getattr(out[idx], field), rest, new)})
    return out


def _with_block(
    program: ast.Program, owner, path: _Path, new: List[ast.Stmt]
) -> ast.Program:
    if owner == ("main",):
        main = replace(program.main, body=_rebuild_block(program.main.body, path, new))
        return replace(program, main=main)
    ti = owner[1]
    threads = list(program.threads)
    threads[ti] = replace(threads[ti], body=_rebuild_block(threads[ti].body, path, new))
    return replace(program, threads=threads)


def _without_thread(program: ast.Program, ti: int) -> ast.Program:
    name = program.threads[ti].name
    threads = [t for i, t in enumerate(program.threads) if i != ti]
    main = program.main
    if main is not None:
        body = [
            s
            for s in main.body
            if not (isinstance(s, (ast.Start, ast.Join)) and s.thread == name)
        ]
        main = replace(main, body=body)
    return replace(program, threads=threads, main=main)


def _chunk_removals(n: int) -> Iterator[Tuple[int, int]]:
    """ddmin schedule: remove chunks of size n/2, n/4, ..., 1."""
    size = max(1, n // 2)
    while size >= 1:
        for start in range(0, n, size):
            yield start, min(start + size, n)
        if size == 1:
            return
        size //= 2


def _subexprs(e: ast.Expr) -> List[ast.Expr]:
    out: List[ast.Expr] = []
    if isinstance(e, ast.Unary):
        out.append(e.operand)
    elif isinstance(e, ast.Binary):
        out += [e.left, e.right]
    out += [ast.IntLit(0), ast.IntLit(1)]
    return [c for c in out if c != e]


def _expr_fields(s: ast.Stmt) -> Tuple[str, ...]:
    if isinstance(s, (ast.Assert, ast.Assume, ast.If, ast.While)):
        return ("cond",)
    if isinstance(s, ast.Assign):
        return ("value",)
    if isinstance(s, ast.LocalDecl) and s.init is not None:
        return ("init",)
    return ()


def _candidates(program: ast.Program) -> Iterator[ast.Program]:
    """All single-step reductions, biggest wins first."""
    # 1. Drop a whole thread (and its start/join).
    for ti in range(len(program.threads)):
        yield _without_thread(program, ti)
    # 2. ddmin chunk removal inside every block.  start/join are kept --
    #    they are only removed together with their thread (pass 1), which
    #    keeps every intermediate candidate sema-valid.
    for owner, path, stmts in _iter_blocks(program):
        n = len(stmts)
        if n == 0:
            continue
        for lo, hi in _chunk_removals(n):
            chunk = stmts[lo:hi]
            if any(isinstance(s, (ast.Start, ast.Join)) for s in chunk):
                continue
            if not _lock_balanced(chunk):
                # sema does not enforce lock/unlock pairing; keep shrink
                # candidates balanced so the minimized program exercises
                # the same semantics as the original finding.
                continue
            yield _with_block(program, owner, path, stmts[:lo] + stmts[hi:])
    # 3. Hoist compound bodies (if -> then-branch, while/atomic -> body).
    for owner, path, stmts in _iter_blocks(program):
        for i, s in enumerate(stmts):
            if isinstance(s, ast.If):
                for body in (s.then_body, s.else_body):
                    yield _with_block(
                        program, owner, path, stmts[:i] + body + stmts[i + 1:]
                    )
            elif isinstance(s, (ast.While, ast.Atomic)):
                yield _with_block(
                    program, owner, path, stmts[:i] + list(s.body) + stmts[i + 1:]
                )
    # 4. Simplify one expression to a sub-expression or literal.
    for owner, path, stmts in _iter_blocks(program):
        for i, s in enumerate(stmts):
            for field in _expr_fields(s):
                for sub in _subexprs(getattr(s, field)):
                    out = list(stmts)
                    out[i] = replace(s, **{field: sub})
                    yield _with_block(program, owner, path, out)
    # 5. Drop an unused global (referenced nowhere, including locks).
    used = _used_names(program)
    for gi, g in enumerate(program.globals):
        if g.name not in used:
            yield replace(
                program, globals=[x for i, x in enumerate(program.globals) if i != gi]
            )


def _lock_balanced(stmts: List[ast.Stmt]) -> bool:
    depth = {}
    for s in stmts:
        if isinstance(s, ast.Lock):
            depth[s.name] = depth.get(s.name, 0) + 1
        elif isinstance(s, ast.Unlock):
            depth[s.name] = depth.get(s.name, 0) - 1
    return all(v == 0 for v in depth.values())


def _used_names(program: ast.Program) -> set:
    used = set()

    def walk_expr(e: ast.Expr) -> None:
        if isinstance(e, ast.VarRef):
            used.add(e.name)
        elif isinstance(e, ast.Unary):
            walk_expr(e.operand)
        elif isinstance(e, ast.Binary):
            walk_expr(e.left)
            walk_expr(e.right)

    for _, _, stmts in _iter_blocks(program):
        for s in stmts:
            if isinstance(s, (ast.Lock, ast.Unlock)):
                used.add(s.name)
            elif isinstance(s, ast.Assign):
                used.add(s.name)
                walk_expr(s.value)
            elif isinstance(s, ast.LocalDecl) and s.init is not None:
                walk_expr(s.init)
            for field in _expr_fields(s):
                walk_expr(getattr(s, field))
    return used


def _valid(program: ast.Program) -> bool:
    from repro.lang.sema import SemanticError, check_program

    try:
        check_program(program)
    except SemanticError:
        return False
    return True


def shrink(
    program: ast.Program,
    predicate: Callable[[ast.Program], bool],
    max_checks: int = 500,
) -> ast.Program:
    """Greedily minimize ``program`` while ``predicate`` stays true.

    ``predicate`` is only ever called on sema-valid candidates; the input
    program itself is assumed interesting (it is returned unchanged if no
    reduction preserves the predicate).
    """
    checks = 0
    improved = True
    while improved and checks < max_checks:
        improved = False
        for cand in _candidates(program):
            if checks >= max_checks:
                break
            if not _valid(cand):
                continue
            checks += 1
            if predicate(cand):
                program = cand
                improved = True
                break
    return program


def shrink_source(
    source: str,
    predicate: Callable[[str], bool],
    max_checks: int = 500,
) -> str:
    """Source-level wrapper around :func:`shrink`."""
    from repro.lang import parse
    from repro.lang.unparse import unparse

    program = shrink(
        parse(source), lambda p: predicate(unparse(p)), max_checks=max_checks
    )
    return unparse(program)
