"""Translator cross-check matrix: mini -> Python -> mini must agree.

For each seed, a program is generated under the Python-expressible
profile (``GenConfig(python_profile=True)``), then verified twice:

* **direct** -- the generated mini-language program as-is;
* **round-tripped** -- emitted as a runnable Python ``threading`` file
  (:func:`repro.pyfront.emit.emit_python`), translated back through the
  ``ast`` frontend (:func:`repro.pyfront.translate.translate_source`),
  and verified.

The two programs are not syntactically identical (the translator hoists
local declarations and renames collisions) but must be *semantically*
identical, so any SAFE/UNSAFE disagreement -- or an emit failure,
translate rejection, or engine ERROR on either side -- is a finding
against the translator/emitter pair.  UNKNOWN on either side (budget
exhaustion) makes the seed inconclusive, not a finding.

This is the fuzz-oracle idea (PR 5) pointed at the new frontend: the
generator explores the subset far more densely than any hand-written
corpus, and verdict equality over hundreds of seeds is the evidence the
translation preserves semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional

from repro.oracle.generator import GenConfig, generate_program
from repro.verify import VerifierConfig

__all__ = [
    "CrossCheckFinding",
    "CrossCheckReport",
    "crosscheck_seed",
    "crosscheck",
]

#: The generation profile used by default: Python-expressible fragment,
#: loop bounds comfortably under the verification unwind bound.
PY_PROFILE = GenConfig(python_profile=True, max_loop_iters=3)


@dataclass
class CrossCheckFinding:
    """One seed where the round trip disagreed with the direct run."""

    seed: int
    kind: str  # verdict-mismatch | emit-error | translate-error | engine-error
    detail: str
    mini_source: str = ""
    python_source: str = ""

    def format(self) -> str:
        lines = [f"seed {self.seed}: {self.kind}: {self.detail}"]
        if self.python_source:
            lines.append("  --- emitted python ---")
            lines.extend("  " + l for l in self.python_source.splitlines())
        return "\n".join(lines)


@dataclass
class CrossCheckReport:
    seeds_run: int = 0
    inconclusive: int = 0  # UNKNOWN on either side: no verdict to compare
    findings: List[CrossCheckFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def format(self) -> str:
        head = (
            f"pyfront cross-check: {self.seeds_run} seeds, "
            f"{len(self.findings)} findings, "
            f"{self.inconclusive} inconclusive"
        )
        return "\n".join([head] + [f.format() for f in self.findings])


def crosscheck_seed(
    seed: int,
    config: Optional[VerifierConfig] = None,
    gen_config: Optional[GenConfig] = None,
) -> Optional[CrossCheckFinding]:
    """Cross-check one seed; None = agreement (or inconclusive).

    Raises nothing: every failure mode is folded into the returned
    finding.  A finding of kind ``inconclusive`` is *returned* (so
    :func:`crosscheck` can count it) but does not fail a sweep.
    """
    from repro.lang.unparse import unparse
    from repro.pyfront import SubsetError, translate_source
    from repro.pyfront.emit import EmitError, emit_python
    from repro.verify.verifier import verify_one

    gen_config = gen_config or PY_PROFILE
    if config is None:
        config = VerifierConfig(unwind=4, time_limit_s=20.0)
    program = generate_program(seed, gen_config)
    mini_source = unparse(program)

    try:
        python_source = emit_python(program)
    except EmitError as exc:
        return CrossCheckFinding(
            seed, "emit-error", str(exc), mini_source=mini_source
        )
    try:
        translation = translate_source(python_source, filename=f"<seed {seed}>")
    except SubsetError as exc:
        return CrossCheckFinding(
            seed, "translate-error", str(exc),
            mini_source=mini_source, python_source=python_source,
        )

    direct = verify_one(program, config)
    routed = verify_one(translation.program, config)
    for side, result in (("direct", direct), ("round-trip", routed)):
        if result.verdict == "error":
            return CrossCheckFinding(
                seed, "engine-error",
                f"{side} run errored: {result.diagnostic}",
                mini_source=mini_source, python_source=python_source,
            )
    if direct.verdict == "unknown" or routed.verdict == "unknown":
        return CrossCheckFinding(
            seed, "inconclusive",
            f"direct={direct.verdict} round-trip={routed.verdict}",
            mini_source=mini_source, python_source=python_source,
        )
    if direct.verdict != routed.verdict:
        return CrossCheckFinding(
            seed, "verdict-mismatch",
            f"direct={direct.verdict} round-trip={routed.verdict}",
            mini_source=mini_source, python_source=python_source,
        )
    return None


def crosscheck(
    seeds: Iterable[int],
    config: Optional[VerifierConfig] = None,
    gen_config: Optional[GenConfig] = None,
    max_findings: int = 25,
    progress: Optional[Callable[[int, "CrossCheckReport"], None]] = None,
) -> CrossCheckReport:
    """Sweep ``seeds`` through :func:`crosscheck_seed`."""
    report = CrossCheckReport()
    for seed in seeds:
        finding = crosscheck_seed(seed, config=config, gen_config=gen_config)
        report.seeds_run += 1
        if finding is not None:
            if finding.kind == "inconclusive":
                report.inconclusive += 1
            else:
                report.findings.append(finding)
        if progress is not None:
            progress(seed, report)
        if len(report.findings) >= max_findings:
            break
    return report
