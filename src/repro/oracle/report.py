"""Findings and reports for the differential fuzzing harness."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

__all__ = ["EngineOutcome", "Finding", "FuzzReport"]

#: Finding kinds, in decreasing severity.
KINDS = (
    "verdict_mismatch",   # sound SAFE vs sound UNSAFE disagreement
    "bad_witness",        # UNSAFE witness fails concrete replay
    "audit_violation",    # internal invariant check fired (AuditError)
    "engine_error",       # engine crashed (contained ERROR verdict)
)


@dataclass
class EngineOutcome:
    """One engine's verdict on one program."""

    key: str
    verdict: str
    wall_s: float = 0.0
    diagnostic: Optional[str] = None
    #: Replay of the UNSAFE witness: True = assert failed concretely
    #: (witness confirmed), False = replayed but no assert failed,
    #: None = not replayed (no witness / not replayable / not UNSAFE).
    replay_ok: Optional[bool] = None
    replay_error: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass
class Finding:
    """One reportable disagreement/violation on one generated program."""

    kind: str
    seed: Optional[int]
    source: str
    detail: str
    outcomes: List[EngineOutcome] = field(default_factory=list)
    #: Minimized source (present when the shrinker ran and made progress).
    shrunk_source: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "seed": self.seed,
            "detail": self.detail,
            "source": self.source,
            "shrunk_source": self.shrunk_source,
            "outcomes": [o.as_dict() for o in self.outcomes],
        }

    def __str__(self) -> str:
        head = f"[{self.kind}] seed={self.seed}: {self.detail}"
        verdicts = ", ".join(f"{o.key}={o.verdict}" for o in self.outcomes)
        return f"{head}\n  verdicts: {verdicts}"


@dataclass
class FuzzReport:
    """Aggregate result of a fuzzing run."""

    seeds_run: int = 0
    programs_safe: int = 0
    programs_unsafe: int = 0
    programs_unknown: int = 0
    engine_runs: int = 0
    replays: int = 0
    findings: List[Finding] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts(self) -> Dict[str, int]:
        out = {k: 0 for k in KINDS}
        for f in self.findings:
            out[f.kind] = out.get(f.kind, 0) + 1
        return out

    def write_jsonl(self, path: str) -> None:
        """One JSON object per finding, plus a trailing summary line."""
        with open(path, "w") as fh:
            for f in self.findings:
                fh.write(json.dumps(f.as_dict(), sort_keys=True) + "\n")
                fh.flush()
            fh.write(json.dumps({"summary": self.summary()}, sort_keys=True) + "\n")

    def summary(self) -> Dict[str, object]:
        return {
            "seeds_run": self.seeds_run,
            "programs_safe": self.programs_safe,
            "programs_unsafe": self.programs_unsafe,
            "programs_unknown": self.programs_unknown,
            "engine_runs": self.engine_runs,
            "replays": self.replays,
            "findings": len(self.findings),
            "by_kind": {k: v for k, v in self.counts().items() if v},
            "wall_s": round(self.wall_s, 3),
        }

    def format(self) -> str:
        lines = [
            f"fuzz: {self.seeds_run} programs, {self.engine_runs} engine runs, "
            f"{self.replays} witness replays in {self.wall_s:.1f}s",
            f"  verdict mix: {self.programs_unsafe} unsafe / "
            f"{self.programs_safe} safe / {self.programs_unknown} unknown",
        ]
        if self.ok:
            lines.append("  no findings: all engines agree, all witnesses replay")
        else:
            by_kind = self.counts()
            mix = ", ".join(f"{k}={v}" for k, v in by_kind.items() if v)
            lines.append(f"  FINDINGS: {len(self.findings)} ({mix})")
            for f in self.findings:
                lines.append("")
                lines.append(str(f))
                if f.shrunk_source:
                    lines.append("  minimized:")
                    lines.extend("    " + ln for ln in f.shrunk_source.splitlines())
        return "\n".join(lines)
