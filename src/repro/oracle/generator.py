"""Seeded random concurrent-program generator for differential fuzzing.

Programs are generated directly as ASTs (:mod:`repro.lang.ast`) and are
**valid by construction**: every program passes
:func:`repro.lang.sema.check_program` and round-trips through the
unparser/parser.  The generator covers the whole mini language the
engines support -- shared and local ints, multiple threads, locks
(balanced, acquired in index order so no generated program can
deadlock by lock ordering), read-modify-write ``atomic`` blocks,
``nondet()``, bounded ``while`` loops, ``if``/``else``, ``assume``,
``fence`` -- and always ends ``main`` with at least one assertion over
the shared state, so every program has a property to disagree about.

Determinism: all randomness flows from one ``random.Random(seed)``; the
same seed always yields the identical program (this is what makes a
fuzzing finding reportable as just a seed).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.lang import ast

__all__ = ["GenConfig", "generate_program", "generate_source"]


@dataclass(frozen=True)
class GenConfig:
    """Knobs bounding the generated programs.

    The defaults aim for programs small enough that the full engine
    matrix answers in well under a second each, yet rich enough to
    exercise locks, atomics, loops and nondeterminism together.
    """

    max_shared: int = 3
    max_locks: int = 2
    max_threads: int = 3
    max_stmts: int = 6
    max_depth: int = 2
    max_expr_depth: int = 2
    max_loop_iters: int = 3
    allow_loops: bool = True
    allow_atomics: bool = True
    allow_locks: bool = True
    allow_nondet: bool = True
    allow_fences: bool = True
    allow_assumes: bool = True
    #: Restrict generation to the Python-expressible fragment
    #: (:mod:`repro.pyfront.emit`): no atomics, fences, free-standing
    #: assumes or bare ``nondet()`` leaves -- instead a bounded-nondet
    #: statement shaped exactly like the translator's ``random.randint``
    #: idiom, so generated programs round-trip through Python emission.
    python_profile: bool = False


_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")
_ARITH_OPS = ("+", "+", "-", "*")
_BOOL_OPS = ("&&", "||")


class _Gen:
    def __init__(self, rng: random.Random, cfg: GenConfig) -> None:
        self.rng = rng
        self.cfg = cfg
        self.shared: List[str] = []
        self.locks: List[str] = []
        self._local_counter = 0

    # -- expressions ---------------------------------------------------

    def _leaf(self, locals_: List[str], allow_nondet: bool) -> ast.Expr:
        r = self.rng
        choices = ["lit", "lit"]
        if self.shared:
            choices += ["shared", "shared"]
        if locals_:
            choices += ["local", "local"]
        if allow_nondet and self.cfg.allow_nondet and not self.cfg.python_profile:
            choices.append("nondet")
        kind = r.choice(choices)
        if kind == "lit":
            return ast.IntLit(r.randint(0, 3))
        if kind == "shared":
            return ast.VarRef(r.choice(self.shared))
        if kind == "local":
            return ast.VarRef(r.choice(locals_))
        return ast.Nondet()

    def _expr(
        self, depth: int, locals_: List[str], allow_nondet: bool = True
    ) -> ast.Expr:
        r = self.rng
        if depth <= 0 or r.random() < 0.4:
            return self._leaf(locals_, allow_nondet)
        op = r.choice(_ARITH_OPS)
        left = self._expr(depth - 1, locals_, allow_nondet)
        if op == "*":
            # Keep products small: one factor is always a tiny literal.
            right: ast.Expr = ast.IntLit(r.randint(0, 2))
        else:
            right = self._expr(depth - 1, locals_, allow_nondet)
        return ast.Binary(op, left, right)

    def _cond(self, locals_: List[str], allow_nondet: bool = True) -> ast.Expr:
        r = self.rng
        cmp_ = ast.Binary(
            r.choice(_CMP_OPS),
            self._expr(self.cfg.max_expr_depth - 1, locals_, allow_nondet),
            self._expr(self.cfg.max_expr_depth - 1, locals_, allow_nondet),
        )
        roll = r.random()
        if roll < 0.15:
            return ast.Unary("!", cmp_)
        if roll < 0.3:
            other = ast.Binary(
                r.choice(_CMP_OPS),
                self._expr(0, locals_, allow_nondet),
                self._expr(0, locals_, allow_nondet),
            )
            return ast.Binary(r.choice(_BOOL_OPS), cmp_, other)
        return cmp_

    # -- statements ----------------------------------------------------

    def _fresh_local(self) -> str:
        name = f"l{self._local_counter}"
        self._local_counter += 1
        return name

    def _assign(self, locals_: List[str], shared_ok: bool = True) -> ast.Stmt:
        r = self.rng
        targets: List[str] = []
        if shared_ok:
            targets += self.shared
        targets += locals_
        if not targets:
            return ast.Skip()
        return ast.Assign(
            r.choice(targets), self._expr(self.cfg.max_expr_depth, locals_)
        )

    def _atomic(self, locals_: List[str]) -> ast.Stmt:
        # Read-modify-write shape: one shared variable, one read, one
        # write (the fragment sema admits).  nondet() is forbidden inside.
        r = self.rng
        g = r.choice(self.shared)
        delta: ast.Expr = ast.IntLit(r.randint(1, 2))
        if locals_ and r.random() < 0.3:
            delta = ast.VarRef(r.choice(locals_))
        return ast.Atomic([ast.Assign(g, ast.Binary(r.choice("+-"), ast.VarRef(g), delta))])

    def _lock_region(
        self, locals_: List[str], depth: int, held_above: int, in_loop: bool
    ) -> List[ast.Stmt]:
        # Locks are always acquired in increasing index order and released
        # in region shape, so generated programs never deadlock.
        r = self.rng
        free = [i for i in range(len(self.locks)) if i > held_above]
        if not free:
            return [self._assign(locals_)]
        idx = r.choice(free)
        inner: List[ast.Stmt] = []
        for _ in range(r.randint(1, 2)):
            inner.extend(self._stmt(locals_, depth - 1, held_above=idx, in_loop=in_loop))
        return [ast.Lock(self.locks[idx])] + inner + [ast.Unlock(self.locks[idx])]

    def _loop(self, locals_: List[str], depth: int, held_above: int) -> List[ast.Stmt]:
        r = self.rng
        counter = self._fresh_local()
        bound = r.randint(1, self.cfg.max_loop_iters)
        body: List[ast.Stmt] = []
        for _ in range(r.randint(1, 2)):
            body.extend(self._stmt(locals_, depth - 1, held_above, in_loop=True))
        body.append(ast.Assign(counter, ast.Binary("+", ast.VarRef(counter), ast.IntLit(1))))
        return [
            ast.LocalDecl(counter, ast.IntLit(0)),
            ast.While(ast.Binary("<", ast.VarRef(counter), ast.IntLit(bound)), body),
        ]

    def _stmt(
        self,
        locals_: List[str],
        depth: int,
        held_above: int = -1,
        in_loop: bool = False,
    ) -> List[ast.Stmt]:
        """One generated statement (possibly a compound returning several)."""
        r = self.rng
        cfg = self.cfg
        choices = ["assign", "assign", "assign"]
        if depth > 0:
            choices.append("if")
            if cfg.allow_loops and not in_loop:
                choices.append("while")
            if cfg.allow_locks and self.locks:
                choices += ["lock", "lock"]
        if cfg.allow_atomics and self.shared and not cfg.python_profile:
            choices.append("atomic")
        if not in_loop:
            choices.append("decl")
            if cfg.python_profile and cfg.allow_nondet:
                choices.append("randint")
        if cfg.allow_assumes and not cfg.python_profile:
            choices.append("assume")
        if cfg.allow_fences and not cfg.python_profile:
            choices.append("fence")
        kind = r.choice(choices)
        if kind == "assign":
            return [self._assign(locals_)]
        if kind == "decl":
            name = self._fresh_local()
            init = self._expr(cfg.max_expr_depth, locals_)
            locals_.append(name)
            return [ast.LocalDecl(name, init)]
        if kind == "randint":
            # The translator's random.randint shape, verbatim -- the
            # Python emitter pattern-matches it back to a randint call.
            name = self._fresh_local()
            lo = r.randint(0, 2)
            hi = lo + r.randint(0, 3)
            locals_.append(name)
            return [
                ast.LocalDecl(name, ast.Nondet()),
                ast.Assume(
                    ast.Binary(
                        "&&",
                        ast.Binary(">=", ast.VarRef(name), ast.IntLit(lo)),
                        ast.Binary("<=", ast.VarRef(name), ast.IntLit(hi)),
                    )
                ),
            ]
        if kind == "if":
            # The condition must be generated *before* the bodies: nested
            # generation may declare new locals, which the condition (checked
            # first by sema, executed first at runtime) must not reference.
            cond = self._cond(locals_)
            then_body: List[ast.Stmt] = []
            for _ in range(r.randint(1, 2)):
                then_body.extend(self._stmt(locals_, depth - 1, held_above, in_loop=True))
            else_body: List[ast.Stmt] = []
            if r.random() < 0.5:
                else_body.extend(self._stmt(locals_, depth - 1, held_above, in_loop=True))
            return [ast.If(cond, then_body, else_body)]
        if kind == "while":
            return self._loop(locals_, depth, held_above)
        if kind == "lock":
            return self._lock_region(locals_, depth, held_above, in_loop)
        if kind == "atomic":
            return [self._atomic(locals_)]
        if kind == "assume":
            # Bias towards satisfiable assumptions so executions survive.
            if r.random() < 0.8:
                return [ast.Assume(ast.Binary(">=", self._expr(1, locals_), ast.IntLit(0)))]
            return [ast.Assume(self._cond(locals_))]
        return [ast.Fence()]

    def _thread_body(self) -> List[ast.Stmt]:
        r = self.rng
        locals_: List[str] = []
        body: List[ast.Stmt] = []
        for _ in range(r.randint(0, 2)):
            name = self._fresh_local()
            body.append(ast.LocalDecl(name, self._expr(1, locals_)))
            locals_.append(name)
        n = r.randint(1, self.cfg.max_stmts)
        while sum(1 for _ in body) < n + 2 and len(body) < self.cfg.max_stmts + 4:
            body.extend(self._stmt(locals_, self.cfg.max_depth))
            if len(body) >= n:
                break
        if r.random() < 0.2 and self.shared:
            body.append(ast.Assert(self._cond(locals_, allow_nondet=False)))
        return body

    # -- whole program -------------------------------------------------

    def program(self) -> ast.Program:
        r = self.rng
        cfg = self.cfg
        n_shared = r.randint(1, cfg.max_shared)
        self.shared = [f"g{i}" for i in range(n_shared)]
        n_locks = r.randint(0, cfg.max_locks) if cfg.allow_locks else 0
        self.locks = [f"m{i}" for i in range(n_locks)]
        globals_ = [ast.GlobalDecl(g, r.randint(0, 2)) for g in self.shared]
        globals_ += [ast.GlobalDecl(m, 0, is_lock=True) for m in self.locks]

        n_threads = r.randint(1, cfg.max_threads)
        threads = [
            ast.ThreadDef(f"t{i}", self._thread_body()) for i in range(n_threads)
        ]

        main_body: List[ast.Stmt] = []
        locals_: List[str] = []
        # Occasionally do some main-thread work before the starts.
        for _ in range(r.randint(0, 1)):
            main_body.extend(self._stmt(locals_, 1))
        for t in threads:
            main_body.append(ast.Start(t.name))
            if r.random() < 0.25:
                main_body.extend(self._stmt(locals_, 0))
        join_order = list(threads)
        r.shuffle(join_order)
        for t in join_order:
            main_body.append(ast.Join(t.name))
        # The property: one or two assertions over the final shared state.
        for _ in range(r.randint(1, 2)):
            g = r.choice(self.shared)
            roll = r.random()
            if roll < 0.5:
                cond: ast.Expr = ast.Binary(
                    r.choice(_CMP_OPS), ast.VarRef(g), ast.IntLit(r.randint(0, 6))
                )
            elif roll < 0.75 and len(self.shared) > 1:
                h = r.choice([s for s in self.shared if s != g])
                cond = ast.Binary(r.choice(_CMP_OPS), ast.VarRef(g), ast.VarRef(h))
            else:
                cond = self._cond(locals_ + [], allow_nondet=False)
            main_body.append(ast.Assert(cond))
        main = ast.ThreadDef("main", main_body)
        return ast.Program(globals_, threads, main)


def generate_program(seed: int, config: Optional[GenConfig] = None) -> ast.Program:
    """Generate the (deterministic) program of ``seed``."""
    gen = _Gen(random.Random(seed), config or GenConfig())
    program = gen.program()
    # Validity is part of the generator's contract -- catch drift here,
    # not as noise in the differential harness.
    from repro.lang.sema import check_program

    check_program(program)
    return program


def generate_source(seed: int, config: Optional[GenConfig] = None) -> str:
    """Generate the program of ``seed`` as normalized source text."""
    from repro.lang.unparse import unparse

    return unparse(generate_program(seed, config))
