"""The differential fuzzing harness.

:func:`run_program` pushes one program through an engine matrix
(:mod:`repro.oracle.matrix`) and turns the outcomes into findings:

* **verdict mismatch** -- some sound engine says SAFE while another
  sound engine says UNSAFE.  UNKNOWN is never a mismatch (an exhausted
  budget indicts nobody), and ``sound_safe=False`` engines (lazy-cseq)
  cannot indict with a SAFE verdict.
* **bad witness** -- an UNSAFE verdict whose trace either fails to
  replay through the concrete interpreter
  (:func:`repro.smc.witness_replay.replay_witness` raises) or replays to
  an execution in which no assertion fails.  This is the *semantic*
  oracle: it catches the case where every engine is wrong in the same
  way about an UNSAFE program.
* **audit violation** -- an engine returned ERROR whose diagnostic is an
  :class:`~repro.oracle.audit.AuditError` (the crash guard contains it);
  an internal invariant of the SAT core or theory solver broke.
* **engine error** -- any other contained crash.

:func:`fuzz` drives the generator over a seed range, minimizes each
finding with the delta-debugging shrinker (predicate = "the same kind of
finding reproduces on the reduced program"), and returns a
:class:`~repro.oracle.report.FuzzReport`.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.lang import ast, parse
from repro.oracle.generator import GenConfig, generate_source
from repro.oracle.matrix import EngineSpec, build_matrix
from repro.oracle.report import EngineOutcome, Finding, FuzzReport
from repro.verify.result import Verdict
from repro.verify.witness import Trace

__all__ = ["run_program", "fuzz"]


def _run_spec(
    source: str,
    spec: EngineSpec,
    unwind: int,
    width: int,
    time_limit_s: Optional[float],
    audit: bool,
) -> Tuple[EngineOutcome, Optional[Trace]]:
    """Run one engine spec; never raises (crashes surface as ERROR).

    Routed through :func:`repro.api.verify`, so setting ``REPRO_SERVER``
    turns a fuzzing run into live traffic against a verification service
    (witnesses still replay: the wire format round-trips them).
    """
    from repro.api import verify

    t0 = time.monotonic()
    witness: Optional[Trace] = None
    if spec.portfolio:
        from repro.portfolio.runner import verify_portfolio

        configs = [
            EngineSpec(key=p, preset=p).make_config(
                unwind=unwind, width=width, time_limit_s=time_limit_s, audit=audit
            )
            for p in spec.portfolio
        ]
        res = verify_portfolio(source, configs, jobs=spec.jobs)
        verdict = res.verdict
        diagnostic = None if res.result is None else res.result.diagnostic
        if res.result is not None:
            witness = res.result.witness
    else:
        config = spec.make_config(
            unwind=unwind, width=width, time_limit_s=time_limit_s, audit=audit
        )
        result = verify(source, config)
        verdict = result.verdict
        diagnostic = result.diagnostic
        witness = result.witness
    return (
        EngineOutcome(
            key=spec.key,
            verdict=str(verdict),
            wall_s=round(time.monotonic() - t0, 6),
            diagnostic=diagnostic,
        ),
        witness,
    )


def _replay(
    program: ast.Program,
    outcome: EngineOutcome,
    witness: Optional[Trace],
    unwind: int,
    width: int,
) -> None:
    """Replay an UNSAFE witness through the concrete interpreter."""
    from repro.smc.witness_replay import ReplayError, replay_witness

    if witness is None or not isinstance(witness, Trace) or not witness.steps:
        return
    try:
        outcome.replay_ok = replay_witness(program, witness, width=width, unwind=unwind)
    except ReplayError as exc:
        outcome.replay_ok = False
        outcome.replay_error = str(exc)
    except Exception as exc:  # noqa: BLE001 - replay crash is itself a finding
        outcome.replay_ok = False
        outcome.replay_error = f"{type(exc).__name__}: {exc}"


def run_program(
    source: str,
    specs: Sequence[EngineSpec],
    unwind: int = 4,
    width: int = 8,
    time_limit_s: Optional[float] = 10.0,
    audit: bool = False,
    replay: bool = True,
    seed: Optional[int] = None,
) -> Tuple[List[EngineOutcome], List[Finding]]:
    """Run one program through every spec; return outcomes and findings."""
    program = parse(source)
    outcomes: List[EngineOutcome] = []
    findings: List[Finding] = []
    for spec in specs:
        outcome, witness = _run_spec(
            source, spec, unwind, width, time_limit_s, audit
        )
        if replay and spec.replayable and outcome.verdict == Verdict.UNSAFE:
            _replay(program, outcome, witness, unwind, width)
        outcomes.append(outcome)

    for spec, outcome in zip(specs, outcomes):
        if outcome.verdict == Verdict.ERROR:
            kind = (
                "audit_violation"
                if "AuditError" in (outcome.diagnostic or "")
                else "engine_error"
            )
            findings.append(
                Finding(
                    kind=kind,
                    seed=seed,
                    source=source,
                    detail=f"{spec.key} crashed: {outcome.diagnostic}",
                    outcomes=outcomes,
                )
            )
        if outcome.replay_ok is False:
            why = outcome.replay_error or "witness replays but no assert fails"
            findings.append(
                Finding(
                    kind="bad_witness",
                    seed=seed,
                    source=source,
                    detail=f"{spec.key} UNSAFE witness rejected: {why}",
                    outcomes=outcomes,
                )
            )

    safe = [
        s.key
        for s, o in zip(specs, outcomes)
        if s.sound_safe and o.verdict == Verdict.SAFE
    ]
    unsafe = [
        s.key
        for s, o in zip(specs, outcomes)
        if s.sound_unsafe and o.verdict == Verdict.UNSAFE
    ]
    if safe and unsafe:
        findings.append(
            Finding(
                kind="verdict_mismatch",
                seed=seed,
                source=source,
                detail=f"SAFE({', '.join(safe)}) vs UNSAFE({', '.join(unsafe)})",
                outcomes=outcomes,
            )
        )
    return outcomes, findings


def _consensus(outcomes: Sequence[EngineOutcome]) -> str:
    verdicts = {o.verdict for o in outcomes}
    if Verdict.UNSAFE in verdicts:
        return Verdict.UNSAFE
    if verdicts == {Verdict.SAFE}:
        return Verdict.SAFE
    if Verdict.SAFE in verdicts:
        return Verdict.SAFE
    return Verdict.UNKNOWN


def _shrink_finding(
    finding: Finding,
    specs: Sequence[EngineSpec],
    unwind: int,
    width: int,
    time_limit_s: Optional[float],
    audit: bool,
    max_checks: int,
) -> None:
    """Minimize a finding in place: same finding kind must reproduce."""
    from repro.oracle.shrinker import shrink_source

    def still_fails(src: str) -> bool:
        try:
            _, fs = run_program(
                src,
                specs,
                unwind=unwind,
                width=width,
                time_limit_s=time_limit_s,
                audit=audit,
                seed=finding.seed,
            )
        except Exception:  # noqa: BLE001 - a crashing candidate is not a repro
            return False
        return any(f.kind == finding.kind for f in fs)

    shrunk = shrink_source(finding.source, still_fails, max_checks=max_checks)
    if shrunk.strip() != finding.source.strip():
        finding.shrunk_source = shrunk


def fuzz(
    seeds: Union[int, Iterable[int]],
    matrix: Union[str, Sequence[EngineSpec]] = "quick",
    unwind: int = 4,
    width: int = 8,
    time_limit_s: Optional[float] = 10.0,
    audit: bool = False,
    replay: bool = True,
    shrink: bool = True,
    shrink_checks: int = 60,
    gen_config: Optional[GenConfig] = None,
    max_findings: Optional[int] = 25,
    progress: Optional[Callable[[int, FuzzReport], None]] = None,
) -> FuzzReport:
    """Differential-fuzz the engine matrix over a seed range.

    Args:
        seeds: an int ``n`` (seeds ``0..n-1``) or an explicit iterable.
        matrix: a matrix name (``quick``/``smt``/``full``) or spec list.
        audit: arm the invariant auditor in every engine run.
        shrink: minimize each finding's program via delta debugging.
        shrink_checks: predicate-evaluation budget per shrink (each check
            re-runs the whole matrix on the candidate).
        max_findings: stop early after this many findings (None = never).
        progress: optional callback ``(seed, report_so_far)``.
    """
    specs = build_matrix(matrix) if isinstance(matrix, str) else list(matrix)
    if isinstance(seeds, int):
        seeds = range(seeds)
    report = FuzzReport()
    t0 = time.monotonic()
    for seed in seeds:
        source = generate_source(seed, gen_config)
        outcomes, findings = run_program(
            source,
            specs,
            unwind=unwind,
            width=width,
            time_limit_s=time_limit_s,
            audit=audit,
            replay=replay,
            seed=seed,
        )
        report.seeds_run += 1
        report.engine_runs += len(outcomes)
        report.replays += sum(1 for o in outcomes if o.replay_ok is not None)
        consensus = _consensus(outcomes)
        if consensus == Verdict.UNSAFE:
            report.programs_unsafe += 1
        elif consensus == Verdict.SAFE:
            report.programs_safe += 1
        else:
            report.programs_unknown += 1
        if findings and shrink:
            for f in findings:
                _shrink_finding(
                    f, specs, unwind, width, time_limit_s, audit, shrink_checks
                )
        report.findings.extend(findings)
        if progress is not None:
            progress(seed, report)
        if max_findings is not None and len(report.findings) >= max_findings:
            break
    report.wall_s = time.monotonic() - t0
    return report
