"""The differential-testing engine matrix.

A matrix is a list of :class:`EngineSpec` -- named engine configurations
whose verdicts on the same program must agree wherever both are sound.
Every spec pins ``prune_level`` and ``unwind_schedule`` explicitly, so a
fuzzing run is reproducible regardless of the ``REPRO_PRUNE`` /
``REPRO_UNWIND_SCHEDULE`` environment.

Soundness flags encode what a disagreement means:

* ``sound_safe`` -- the engine's SAFE verdict is trustworthy within the
  common unwinding bound.  ``lazy-cseq`` is the one exception: like the
  original tool its SAFE only covers the round-robin round bound, so its
  SAFE never indicts anyone (but its UNSAFE does).
* ``sound_unsafe`` -- the engine's UNSAFE verdict is trustworthy (all of
  them are; UNSAFE verdicts are additionally replayed through the
  concrete interpreter by the harness).

Three matrices: ``quick`` (CI smoke), ``smt`` (every DPLL(T) ablation x
prune level x schedule), ``full`` (smt + every baseline engine + serial
and parallel portfolios).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.verify.config import PRESETS, VerifierConfig

__all__ = ["EngineSpec", "MATRICES", "build_matrix"]


@dataclass(frozen=True)
class EngineSpec:
    """One column of the differential matrix."""

    key: str
    preset: str
    overrides: Tuple[Tuple[str, object], ...] = ()
    sound_safe: bool = True
    sound_unsafe: bool = True
    #: UNSAFE witnesses from this spec replay through the concrete
    #: interpreter (SMT-engine traces carry the event ids replay needs).
    replayable: bool = False
    #: Non-empty: race these presets via ``verify_portfolio`` instead of
    #: a single ``verify`` call.
    portfolio: Tuple[str, ...] = ()
    jobs: int = 1

    def make_config(
        self,
        unwind: int = 4,
        width: int = 8,
        time_limit_s: Optional[float] = None,
        audit: bool = False,
    ) -> VerifierConfig:
        kw: Dict[str, object] = {
            "unwind": unwind,
            "width": width,
            "prune_level": 2,
            "unwind_schedule": (),
            "time_limit_s": time_limit_s,
            "audit": audit,
        }
        kw.update(dict(self.overrides))
        return PRESETS[self.preset](**kw)


def _spec(key: str, preset: str, **kw) -> EngineSpec:
    overrides = tuple(sorted(kw.pop("overrides", {}).items()))
    return EngineSpec(key=key, preset=preset, overrides=overrides, **kw)


_QUICK = (
    _spec("zord", "zord", replayable=True),
    _spec("zord-tarjan", "zord-tarjan", replayable=True),
    _spec("cbmc", "cbmc", replayable=True),
)

_SMT = _QUICK + (
    _spec("zord-", "zord-", replayable=True),
    _spec("zord'", "zord'", replayable=True),
    _spec("zord/prune0", "zord", overrides={"prune_level": 0}, replayable=True),
    _spec("zord/prune1", "zord", overrides={"prune_level": 1}, replayable=True),
    _spec(
        "zord/sched",
        "zord",
        overrides={"unwind_schedule": (1, 2, 4, 8, 16)},
        replayable=True,
    ),
)

_FULL = _SMT + (
    _spec("dartagnan", "dartagnan"),
    _spec("cpa-seq", "cpa-seq"),
    # Lazy-CSeq's SAFE only covers its round bound (see module docstring).
    _spec("lazy-cseq", "lazy-cseq", sound_safe=False),
    _spec("nidhugg-rfsc", "nidhugg-rfsc"),
    _spec("genmc", "genmc"),
    _spec("portfolio/serial", "zord", portfolio=("zord", "cbmc"), jobs=1),
    _spec(
        "portfolio/parallel",
        "zord",
        portfolio=("zord", "zord-tarjan"),
        jobs=2,
    ),
)

MATRICES: Dict[str, Tuple[EngineSpec, ...]] = {
    "quick": _QUICK,
    "smt": _SMT,
    "full": _FULL,
}


def build_matrix(name: str) -> Tuple[EngineSpec, ...]:
    """Resolve a matrix by name (``quick`` / ``smt`` / ``full``)."""
    try:
        return MATRICES[name]
    except KeyError:
        raise ValueError(
            f"unknown matrix {name!r}; choose from {sorted(MATRICES)}"
        ) from None
