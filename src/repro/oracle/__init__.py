"""``repro.oracle``: correctness tooling for the verifier itself.

Three complementary oracles over the whole engine matrix:

* **differential testing** -- a seeded random program generator
  (:mod:`repro.oracle.generator`) feeds every program through a matrix of
  engine configurations (:mod:`repro.oracle.matrix`); any verdict
  disagreement between sound configurations is a bug in at least one of
  them (:mod:`repro.oracle.harness`);
* **semantic witness replay** -- every ``UNSAFE`` verdict's witness is
  replayed through the concrete SMC interpreter
  (:mod:`repro.smc.witness_replay`), so a wrong ``UNSAFE`` cannot hide
  behind an agreeing-but-wrong sibling;
* **invariant auditing** -- ``REPRO_AUDIT=1`` /
  ``VerifierConfig(audit=True)`` arms per-step internal checks in the SAT
  core and the T_ord theory solver (:mod:`repro.oracle.audit`).

Failing programs are minimized by a delta-debugging shrinker
(:mod:`repro.oracle.shrinker`).  The CLI front end is ``repro fuzz``.

This ``__init__`` deliberately imports only the (dependency-free) audit
module: the SAT core and theory solver import it from their constructors,
and must not drag the generator/harness stack (and with it the whole
verify layer) into every solver construction.
"""

from repro.oracle.audit import AuditError, audit_enabled, enable_audit

__all__ = ["AuditError", "audit_enabled", "enable_audit"]
