"""Debug-mode invariant auditor for the DPLL(T) core (the oracle's third
leg, next to differential testing and witness replay).

The soundness of the T_ord integration rests on delicate bookkeeping --
incremental cycle detection labels, the theory trail, the RF/WS indices,
conflict-clause falsification, unsat cores -- and theory/SAT desyncs in
exactly this kind of integration are notoriously silent: the solver keeps
producing *answers*, just not always the right ones.  The auditor turns
those invariants into hard checks:

* **ICD labels** (:func:`check_icd_labels`): the pseudo-topological order
  is a permutation and every active edge ``u -> v`` satisfies
  ``ord[u] < ord[v]``;
* **theory state sync** (:func:`check_theory_sync`): the theory trail,
  the event graph's active adjacency (out and in), the
  ``_out_rf``/``_out_ws`` partner indices and the inactive-edge index all
  describe the same set of edges, in activation order, across arbitrary
  backjumps;
* **conflict clauses** (:func:`check_conflict_clause`): every theory
  conflict clause handed to the SAT core is actually falsified by the
  current assignment;
* **propagation reasons** (:func:`check_propagation_reason`): a reason
  clause contains its propagated literal and no other non-false literal;
* **unsat cores** (checked inside :class:`repro.sat.solver.Solver`):
  every reported core re-solves UNSAT in isolation.

Auditing is opt-in: set ``REPRO_AUDIT=1`` in the environment (picked up
by every :class:`~repro.sat.solver.Solver` /
:class:`~repro.ordering.solver.OrderingTheory` at construction) or pass
``VerifierConfig(audit=True)``.  A violation raises :class:`AuditError`,
an ``AssertionError`` subclass: under the crash-containment guard it
surfaces as an ``ERROR`` verdict whose diagnostic names the broken
invariant, which the fuzz harness (:mod:`repro.oracle.harness`) counts as
a finding.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence

__all__ = [
    "AuditError",
    "audit_enabled",
    "check_icd_labels",
    "check_theory_sync",
    "check_conflict_clause",
    "check_propagation_reason",
    "enable_audit",
]

_TRUTHY = ("1", "true", "on", "yes")


class AuditError(AssertionError):
    """An internal solver invariant does not hold.

    This always indicates a verifier bug (never an input error), hence an
    ``AssertionError``: tests fail loudly, and the crash guard contains it
    into an ``ERROR`` verdict with the invariant in the diagnostic."""


def audit_enabled() -> bool:
    """Whether ``REPRO_AUDIT`` asks for auditing (read per construction,
    so tests can flip it with ``monkeypatch.setenv``)."""
    return os.environ.get("REPRO_AUDIT", "").strip().lower() in _TRUTHY


def enable_audit(encoded) -> None:
    """Switch auditing on for an encoded program's SAT core and theory
    solver (mirror of :func:`repro.verify.telemetry.attach_telemetry`)."""
    solver = getattr(encoded, "solver", None)
    if solver is not None and hasattr(solver, "audit"):
        solver.audit = True
    theory = getattr(encoded, "theory", None)
    if theory is not None and hasattr(theory, "audit"):
        theory.audit = True
    detector = getattr(theory, "detector", None)
    if detector is not None and hasattr(detector, "audit"):
        detector.audit = True


# ----------------------------------------------------------------------
# ICD label consistency
# ----------------------------------------------------------------------


def check_icd_labels(graph) -> None:
    """The pseudo-topological labels are consistent with all active edges.

    ``graph`` is a :class:`repro.ordering.event_graph.EventGraph` whose
    ``ord`` labels are maintained by the incremental cycle detector.
    """
    ord_ = graph.ord
    n = graph.n
    if sorted(ord_) != list(range(n)):
        raise AuditError(
            f"ICD labels are not a permutation of 0..{n - 1}: {ord_}"
        )
    for edges in graph.out:
        for e in edges:
            if ord_[e.src] >= ord_[e.dst]:
                raise AuditError(
                    f"active edge {e!r} violates the pseudo-topological "
                    f"order: ord[{e.src}]={ord_[e.src]} >= "
                    f"ord[{e.dst}]={ord_[e.dst]}"
                )


# ----------------------------------------------------------------------
# Theory trail / graph / index synchronization
# ----------------------------------------------------------------------


def check_theory_sync(theory) -> None:
    """Trail, active adjacency, RF/WS partner indices and the
    inactive-edge index all agree (``theory`` is an
    :class:`repro.ordering.solver.OrderingTheory`)."""
    graph = theory.graph
    trail = theory._trail

    for (e1, l1), (e2, l2) in zip(trail, trail[1:]):
        if l1 > l2:
            raise AuditError(
                f"theory trail levels not monotone: {e1!r}@{l1} precedes "
                f"{e2!r}@{l2}"
            )

    active: List = [e for edges in graph.out for e in edges]
    active_ids = {id(e) for e in active}
    if len(active_ids) != len(active):
        raise AuditError("an edge appears twice in the active out-adjacency")
    inc = [e for edges in graph.inc for e in edges]
    if len(inc) != len(active) or {id(e) for e in inc} != active_ids:
        raise AuditError(
            f"in/out adjacency desynchronized: {len(inc)} incoming vs "
            f"{len(active)} outgoing active edges"
        )
    if graph.n_active_edges != len(active):
        raise AuditError(
            f"active edge count {graph.n_active_edges} != adjacency size "
            f"{len(active)}"
        )
    for e in active:
        if not e.active:
            raise AuditError(f"edge in adjacency but not flagged active: {e!r}")

    trail_ids = [id(e) for e, _ in trail]
    if len(set(trail_ids)) != len(trail_ids):
        raise AuditError("an edge appears twice on the theory trail")
    non_po_ids = {id(e) for e in active if not e.is_po}
    if set(trail_ids) != non_po_ids:
        missing = [e for e, _ in trail if id(e) not in active_ids]
        stray = [e for e in active if not e.is_po and id(e) not in set(trail_ids)]
        raise AuditError(
            "theory trail and active non-PO edges disagree: "
            f"trail edges not active={missing!r}, "
            f"active edges not on trail={stray!r}"
        )

    # RF/WS partner indices mirror the trail in activation order.
    expect_rf: List[List] = [[] for _ in range(graph.n)]
    expect_ws: List[List] = [[] for _ in range(graph.n)]
    for e, _lvl in trail:
        if e.kind == "rf":
            expect_rf[e.src].append(e)
        elif e.kind == "ws":
            expect_ws[e.src].append(e)
    for src in range(graph.n):
        for label, got, want in (
            ("_out_rf", theory._out_rf[src], expect_rf[src]),
            ("_out_ws", theory._out_ws[src], expect_ws[src]),
        ):
            if len(got) != len(want) or any(
                a is not b for a, b in zip(got, want)
            ):
                raise AuditError(
                    f"{label}[{src}] desynchronized from the trail: "
                    f"index={got!r}, trail={want!r}"
                )

    # Variable-controlled edges sit in exactly one of active / inactive.
    for var, e in theory._edge_of_var.items():
        bucket = graph.inactive_out[e.src].get(e.dst, [])
        in_bucket = any(x is e for x in bucket)
        if e.active:
            if id(e) not in active_ids:
                raise AuditError(
                    f"registered edge flagged active but absent from the "
                    f"adjacency: var {var}, {e!r}"
                )
            if in_bucket:
                raise AuditError(
                    f"active edge still in the inactive index: var {var}, {e!r}"
                )
        elif not in_bucket:
            raise AuditError(
                f"inactive registered edge missing from the inactive "
                f"index: var {var}, {e!r}"
            )


# ----------------------------------------------------------------------
# SAT-side checks (called by the solver with its own value function)
# ----------------------------------------------------------------------


def check_conflict_clause(
    value_of: Callable[[int], Optional[bool]], clause: Sequence[int]
) -> None:
    """Every literal of a theory conflict clause must be currently false."""
    for lit in clause:
        v = value_of(lit)
        if v is not False:
            state = "unassigned" if v is None else "true"
            raise AuditError(
                f"theory conflict clause {list(clause)} is not falsified: "
                f"literal {lit} is {state}"
            )


def check_propagation_reason(
    value_of: Callable[[int], Optional[bool]],
    lit: int,
    reason: Sequence[int],
) -> None:
    """A propagation reason must contain ``lit`` and no other non-false
    literal, and ``lit`` itself must not already be false."""
    if lit not in reason:
        raise AuditError(
            f"propagation reason {list(reason)} does not contain its "
            f"propagated literal {lit}"
        )
    for other in reason:
        if other == lit:
            continue
        v = value_of(other)
        if v is not False:
            state = "unassigned" if v is None else "true"
            raise AuditError(
                f"propagation reason {list(reason)} for literal {lit} has "
                f"non-false literal {other} ({state})"
            )
