"""Typed clients for the verification service.

:class:`ServiceClient` is the synchronous client -- either connected to a
running TCP daemon (:meth:`ServiceClient.connect`) or owning a private
stdio daemon it spawned as a subprocess (:meth:`ServiceClient.spawn`,
handy for tests and one-off scripts: the server dies with the client).
:class:`AsyncServiceClient` is the asyncio variant for TCP.

Both speak the JSON-lines protocol of :mod:`repro.service.protocol` and
translate wire results back into first-class
:class:`~repro.verify.result.VerificationResult` objects, so calling
``client.verify(...)`` is a drop-in for the in-process
:func:`repro.api.verify` -- same type, same verdicts, same stats keys
(plus ``cache_hit`` / ``queue_wait_s`` / ``worker_recycles``).

Protocol-level failures (bad program text, bad config, malformed
responses, a dead server) raise :class:`ServiceError`.  Engine-level
outcomes (budget exhaustion, contained crashes, load shedding) do *not*
raise -- they come back as UNKNOWN/ERROR verdicts, exactly like the
library API.

**Resilience** (TCP clients): connection attempts honour a connect
timeout (a dead or blackholed target fails fast instead of hanging),
reads honour an optional ``request_timeout_s``, and transport-level
failures -- refused/ dropped connections, mid-request disconnects, read
timeouts -- are retried on a fresh connection with capped exponential
backoff and jitter (:class:`RetryPolicy`).  Only *idempotent* operations
are retried: every op except ``shutdown`` qualifies (``verify`` is
content-addressed and coalesced server-side, the rest are read-only).
Distinct failures stay distinguishable: :class:`ServiceTimeout` for
deadlines, :class:`ServiceUnavailable` for transport trouble, plain
:class:`ServiceError` for a delivered ``ok: false`` answer -- delivered
answers are never retried.  ``hedge_after_s`` additionally enables
tail-latency hedging of ``verify``: when the primary connection has not
answered in time, the same request is raced on a second connection and
the first answer wins -- safe because the server coalesces identical
in-flight requests, so a hedge costs one duplicate line, not one
duplicate solve.

Spawned stdio daemons (:meth:`ServiceClient.spawn`) are reaped even when
the client is never closed: a ``weakref.finalize`` hook closes the
daemon's stdin and waits for it (escalating to kill) when the client is
garbage-collected, so leaked clients cannot strand daemon processes.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import queue as queue_mod
import random
import socket
import subprocess
import sys
import threading
import time
import weakref
from dataclasses import dataclass
from typing import Any, Dict, Optional, Union

from repro.service import protocol
from repro.verify.config import VerifierConfig
from repro.verify.result import VerificationResult

__all__ = [
    "ServiceError",
    "ServiceTimeout",
    "ServiceUnavailable",
    "RetryPolicy",
    "ServiceClient",
    "AsyncServiceClient",
]


class ServiceError(Exception):
    """The service answered ``ok: false`` or the transport failed."""


class ServiceTimeout(ServiceError):
    """A connect or request deadline expired client-side."""


class ServiceUnavailable(ServiceError):
    """Transport-level failure: connection refused, dropped, or closed
    mid-request.  Retried automatically for idempotent ops."""


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with jitter for idempotent retries.

    ``attempts`` counts total tries (1 = no retry).  The delay before
    retry *n* (0-based) is ``base_delay_s * 2**n`` capped at
    ``max_delay_s``, scaled by a uniform random factor in
    ``[1 - jitter, 1]`` so synchronized clients do not reconnect in
    lockstep after a daemon restart.
    """

    attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, retry_index: int) -> float:
        raw = min(self.max_delay_s, self.base_delay_s * (2.0 ** retry_index))
        return raw * (1.0 - self.jitter * random.random())


def _reap_spawned_daemon(proc: "subprocess.Popen") -> None:
    """Finalizer for spawned stdio daemons: EOF its stdin (the server's
    clean-exit signal), wait, escalate to kill.  Module-level so the
    weakref.finalize hook holds no reference to the client."""
    if proc.poll() is not None:
        return
    try:
        if proc.stdin is not None and not proc.stdin.closed:
            proc.stdin.close()
    except OSError:
        pass
    try:
        proc.wait(timeout=5.0)
    except subprocess.TimeoutExpired:
        proc.kill()
        try:
            proc.wait(timeout=5.0)
        except subprocess.TimeoutExpired:
            pass


def _prepare_verify_fields(
    program: Union[str, Any],
    config: Optional[Union[VerifierConfig, Dict]],
    deadline_s: Optional[float],
    language: Optional[str] = None,
    filename: Optional[str] = None,
) -> Dict[str, Any]:
    if not isinstance(program, str):
        from repro.lang.unparse import unparse

        program = unparse(program)
    fields: Dict[str, Any] = {"source": program}
    if language is not None:
        fields["language"] = language
    if filename is not None:
        fields["filename"] = filename
    if config is not None:
        fields["config"] = (
            config.to_dict() if isinstance(config, VerifierConfig) else config
        )
    if deadline_s is not None:
        fields["deadline_s"] = deadline_s
    return fields


def _result_from_response(response: Dict[str, Any]) -> VerificationResult:
    if not response.get("ok"):
        raise ServiceError(response.get("error", "unspecified service error"))
    try:
        return VerificationResult.from_dict(response["result"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"malformed verify response: {exc}") from None


def _checked(response: Dict[str, Any]) -> Dict[str, Any]:
    if not response.get("ok"):
        raise ServiceError(response.get("error", "unspecified service error"))
    return response


class _RequestMatcher:
    """Shared id-assignment and response-matching logic.

    Responses arrive in completion order, not request order, so both
    clients stash responses whose id is not the one currently awaited
    (relevant once callers pipeline by issuing requests from several
    threads/tasks over one client -- the protocol allows it).
    """

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self._stash: Dict[Any, Dict[str, Any]] = {}

    def next_id(self) -> int:
        return next(self._ids)

    def take(self, request_id: int) -> Optional[Dict[str, Any]]:
        return self._stash.pop(request_id, None)

    def offer(self, response: Dict[str, Any], request_id: int) -> bool:
        """True if ``response`` answers ``request_id``; else stash it."""
        if response.get("id") == request_id:
            return True
        self._stash[response.get("id")] = response
        return False


def _decode_response(line: str) -> Dict[str, Any]:
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"malformed response from server: {exc}") from None
    if not isinstance(obj, dict):
        raise ServiceError(
            f"malformed response from server: expected object, "
            f"got {type(obj).__name__}"
        )
    return obj


class ServiceClient:
    """Synchronous JSON-lines client (see module docstring)."""

    def __init__(
        self,
        reader,
        writer,
        proc=None,
        sock=None,
        address: Optional[str] = None,
        connect_timeout_s: float = 10.0,
        request_timeout_s: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        hedge_after_s: Optional[float] = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._proc = proc
        self._sock = sock
        self._address = address
        self._connect_timeout_s = connect_timeout_s
        self._request_timeout_s = request_timeout_s
        self._retry = retry or RetryPolicy()
        self._hedge_after_s = hedge_after_s
        self._matcher = _RequestMatcher()
        self._write_lock = threading.Lock()
        self._read_lock = threading.Lock()
        self._closed = False
        self._broken = False
        self._finalizer = (
            weakref.finalize(self, _reap_spawned_daemon, proc)
            if proc is not None
            else None
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def _open_socket(address: str, timeout: float, read_timeout):
        host, _, port_text = address.rpartition(":")
        if not host or not port_text.isdigit():
            raise ValueError(f"expected HOST:PORT, got {address!r}")
        try:
            sock = socket.create_connection((host, int(port_text)), timeout)
        except socket.timeout:
            raise ServiceTimeout(
                f"connect to repro service at {address} timed out "
                f"after {timeout:g}s"
            ) from None
        except OSError as exc:
            raise ServiceUnavailable(
                f"cannot connect to repro service at {address}: {exc}"
            ) from None
        # The read timeout stays on the socket: a response that does not
        # arrive in time raises through the buffered stream, the client
        # discards the (now unframed) connection and reconnects.
        sock.settimeout(read_timeout)
        stream = sock.makefile("rw", encoding="utf-8", newline="\n")
        return sock, stream

    @classmethod
    def connect(
        cls,
        address: str,
        timeout: float = 10.0,
        request_timeout_s: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        hedge_after_s: Optional[float] = None,
    ) -> "ServiceClient":
        """Connect to a running TCP daemon at ``"HOST:PORT"``.

        ``timeout`` bounds the connection attempt (a dead target raises
        :class:`ServiceTimeout`/:class:`ServiceUnavailable` instead of
        hanging); ``request_timeout_s`` bounds each response read;
        ``retry`` configures idempotent-op retries across reconnects;
        ``hedge_after_s`` enables tail-latency hedging of ``verify``.
        """
        sock, stream = cls._open_socket(address, timeout, request_timeout_s)
        return cls(
            stream,
            stream,
            sock=sock,
            address=address,
            connect_timeout_s=timeout,
            request_timeout_s=request_timeout_s,
            retry=retry,
            hedge_after_s=hedge_after_s,
        )

    @classmethod
    def spawn(
        cls,
        workers: Optional[int] = None,
        recycle_after: Optional[int] = None,
        max_queue: Optional[int] = None,
        cache_size: Optional[int] = None,
        time_limit_s: Optional[float] = None,
        cache_dir: Optional[str] = None,
    ) -> "ServiceClient":
        """Start a private ``repro serve --stdio`` daemon and connect to
        it over its pipes.  The daemon exits when the client closes (or,
        failing that, when the client is garbage-collected -- a
        finalizer reaps it)."""
        cmd = [sys.executable, "-m", "repro.cli", "serve", "--stdio"]
        if workers is not None:
            cmd += ["--workers", str(workers)]
        if recycle_after is not None:
            cmd += ["--recycle-after", str(recycle_after)]
        if max_queue is not None:
            cmd += ["--max-queue", str(max_queue)]
        if cache_size is not None:
            cmd += ["--cache-size", str(cache_size)]
        if time_limit_s is not None:
            cmd += ["--time-limit", str(time_limit_s)]
        if cache_dir is not None:
            cmd += ["--cache-dir", cache_dir]
        proc = subprocess.Popen(
            cmd,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            bufsize=1,  # line-buffered pipes: one request/response per line
        )
        return cls(proc.stdout, proc.stdin, proc=proc)

    # ------------------------------------------------------------------
    # Core request/response
    # ------------------------------------------------------------------

    def _reconnect(self) -> None:
        """Replace a broken TCP connection (the old one's framing is
        unusable after a timeout or mid-response failure)."""
        if self._address is None:
            raise ServiceUnavailable("connection lost (not reconnectable)")
        with self._write_lock:
            for closer in (self._reader, self._sock):
                try:
                    if closer is not None:
                        closer.close()
                except OSError:
                    pass
            sock, stream = self._open_socket(
                self._address, self._connect_timeout_s, self._request_timeout_s
            )
            self._sock = sock
            self._reader = stream
            self._writer = stream
            self._broken = False

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request, block for its (id-matched) response.

        Idempotent ops (everything but ``shutdown``) are retried with
        backoff across reconnects on transport failures when the client
        was built from :meth:`connect`.
        """
        retryable = op != "shutdown" and self._address is not None
        attempts = self._retry.attempts if retryable else 1
        last_exc: Optional[ServiceError] = None
        for attempt in range(attempts):
            if attempt:
                time.sleep(self._retry.delay(attempt - 1))
            if self._broken and self._address is not None:
                try:
                    self._reconnect()
                except ServiceError as exc:
                    last_exc = exc
                    continue
            try:
                return self._request_once(op, fields)
            except (ServiceTimeout, ServiceUnavailable) as exc:
                self._broken = True
                last_exc = exc
        assert last_exc is not None
        raise last_exc

    def _request_once(self, op: str, fields: Dict[str, Any]) -> Dict[str, Any]:
        if self._closed:
            raise ServiceError("client is closed")
        request_id = self._matcher.next_id()
        payload = {"id": request_id, "op": op}
        payload.update(fields)
        try:
            with self._write_lock:
                self._writer.write(protocol.encode(payload))
                self._writer.flush()
        except socket.timeout:
            raise ServiceTimeout(
                f"request send timed out after {self._request_timeout_s:g}s"
            ) from None
        except (OSError, ValueError, BrokenPipeError) as exc:
            raise ServiceUnavailable(f"cannot send request: {exc}") from None
        while True:
            stashed = self._matcher.take(request_id)
            if stashed is not None:
                return stashed
            # One reader at a time; a pipelining thread whose response was
            # read (and stashed) by another thread picks it up on the next
            # loop turn instead of blocking in readline() forever.
            with self._read_lock:
                stashed = self._matcher.take(request_id)
                if stashed is not None:
                    return stashed
                try:
                    line = self._reader.readline()
                except socket.timeout:
                    raise ServiceTimeout(
                        "no response within "
                        f"{self._request_timeout_s:g}s"
                    ) from None
                except OSError as exc:
                    raise ServiceUnavailable(
                        f"cannot read response: {exc}"
                    ) from None
                if not line:
                    raise ServiceUnavailable("server closed the connection")
                if not line.strip():
                    continue
                response = _decode_response(line)
                if self._matcher.offer(response, request_id):
                    return response

    # ------------------------------------------------------------------
    # Typed operations
    # ------------------------------------------------------------------

    def verify(
        self,
        program: Union[str, Any],
        config: Optional[Union[VerifierConfig, Dict]] = None,
        deadline_s: Optional[float] = None,
        language: Optional[str] = None,
        filename: Optional[str] = None,
    ) -> VerificationResult:
        """Verify ``program`` (source text or AST) on the server.

        Returns the same :class:`VerificationResult` the in-process API
        would, with the service stats (``cache_hit``, ``queue_wait_s``,
        ``worker_recycles``) merged into ``result.stats``.

        ``language="python"`` submits Python ``threading`` source: the
        server translates it (:mod:`repro.pyfront`) before keying the
        cache, and subset violations come back as structured ERROR
        verdicts whose diagnostic carries ``filename:line:col`` (pass
        ``filename`` so those point at the real file).

        With ``hedge_after_s`` configured (TCP only), a primary answer
        slower than the hedge delay races a duplicate of the request on
        a second connection; the first answer wins.  Safe: the server
        coalesces identical in-flight requests, so the duplicate shares
        the primary's job instead of spawning a second solve.
        """
        fields = _prepare_verify_fields(
            program, config, deadline_s, language=language, filename=filename
        )
        if self._hedge_after_s is None or self._address is None:
            return _result_from_response(self.request("verify", **fields))
        return _result_from_response(self._hedged_request(fields))

    def _hedged_request(self, fields: Dict[str, Any]) -> Dict[str, Any]:
        """Race the primary connection against a late second connection
        carrying the same request; first answer wins."""
        answers: "queue_mod.Queue" = queue_mod.Queue()

        def _primary() -> None:
            try:
                answers.put((self.request("verify", **fields), None))
            except BaseException as exc:  # noqa: BLE001 - relayed below
                answers.put((None, exc))

        def _hedge() -> None:
            try:
                hedge_client = ServiceClient.connect(
                    self._address,
                    timeout=self._connect_timeout_s,
                    request_timeout_s=self._request_timeout_s,
                    retry=self._retry,
                )
                try:
                    answers.put(
                        (hedge_client.request("verify", **fields), None)
                    )
                finally:
                    hedge_client.close()
            except BaseException as exc:  # noqa: BLE001 - relayed below
                answers.put((None, exc))

        threading.Thread(
            target=_primary, name="service-client-primary", daemon=True
        ).start()
        try:
            response, exc = answers.get(timeout=self._hedge_after_s)
        except queue_mod.Empty:
            threading.Thread(
                target=_hedge, name="service-client-hedge", daemon=True
            ).start()
            response, exc = answers.get()
            if exc is not None:
                # First finisher failed; the race is still two-horse, so
                # wait for the other leg before giving up.
                response, exc = answers.get()
        if exc is not None:
            raise exc
        return response

    def analyze(
        self, program: Union[str, Any], unwind: int = 8, width: int = 8
    ) -> Dict[str, Any]:
        """Static race report; ``races`` holds RaceWarning objects."""
        fields = _prepare_verify_fields(program, None, None)
        response = _checked(
            self.request("analyze", unwind=unwind, width=width, **fields)
        )
        from repro.analysis.races import RaceWarning

        report = dict(response["report"])
        report["races"] = [RaceWarning.from_dict(w) for w in report["races"]]
        return report

    def ping(self) -> Dict[str, Any]:
        return _checked(self.request("ping"))

    def stats(self) -> Dict[str, Any]:
        return _checked(self.request("stats"))["stats"]

    def health(self) -> Dict[str, Any]:
        """Liveness probe: draining state, queue depth, worker liveness,
        cache counters."""
        return _checked(self.request("health"))["health"]

    def ready(self) -> bool:
        """Admission probe: should new work be routed to this daemon?"""
        return bool(_checked(self.request("ready"))["ready"])

    def shutdown(self) -> None:
        """Ask the server to exit (tolerates it dying before answering)."""
        try:
            self.request("shutdown")
        except ServiceError:
            pass

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._finalizer is not None:
            # close() does the reaping itself; the GC hook would only
            # re-wait on an already-dead process.
            self._finalizer.detach()
        if self._proc is not None:
            # Closing stdin is the stdio server's EOF; it drains and exits.
            try:
                self._writer.close()
            except OSError:
                pass
            try:
                self._proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                self._proc.kill()
                self._proc.wait(timeout=5.0)
            try:
                self._reader.close()
            except OSError:
                pass
            return
        for stream in {self._writer, self._reader}:
            try:
                stream.close()
            except OSError:
                pass
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncServiceClient:
    """Asyncio TCP client mirroring :class:`ServiceClient`, including
    connect/request timeouts, idempotent retries, and hedging."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        address: Optional[str] = None,
        connect_timeout_s: float = 10.0,
        request_timeout_s: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        hedge_after_s: Optional[float] = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._address = address
        self._connect_timeout_s = connect_timeout_s
        self._request_timeout_s = request_timeout_s
        self._retry = retry or RetryPolicy()
        self._hedge_after_s = hedge_after_s
        self._matcher = _RequestMatcher()
        self._read_lock = asyncio.Lock()
        self._closed = False
        self._broken = False

    @staticmethod
    async def _open_streams(address: str, timeout: float):
        host, _, port_text = address.rpartition(":")
        if not host or not port_text.isdigit():
            raise ValueError(f"expected HOST:PORT, got {address!r}")
        try:
            return await asyncio.wait_for(
                asyncio.open_connection(host, int(port_text)),
                timeout=timeout,
            )
        except asyncio.TimeoutError:
            raise ServiceTimeout(
                f"connect to repro service at {address} timed out "
                f"after {timeout:g}s"
            ) from None
        except OSError as exc:
            raise ServiceUnavailable(
                f"cannot connect to repro service at {address}: {exc}"
            ) from None

    @classmethod
    async def connect(
        cls,
        address: str,
        timeout: float = 10.0,
        request_timeout_s: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        hedge_after_s: Optional[float] = None,
    ) -> "AsyncServiceClient":
        reader, writer = await cls._open_streams(address, timeout)
        return cls(
            reader,
            writer,
            address=address,
            connect_timeout_s=timeout,
            request_timeout_s=request_timeout_s,
            retry=retry,
            hedge_after_s=hedge_after_s,
        )

    async def _reconnect(self) -> None:
        if self._address is None:
            raise ServiceUnavailable("connection lost (not reconnectable)")
        try:
            self._writer.close()
        except Exception:
            pass
        self._reader, self._writer = await self._open_streams(
            self._address, self._connect_timeout_s
        )
        self._broken = False

    async def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Like :meth:`ServiceClient.request`: idempotent ops retry with
        backoff across reconnects on transport failures."""
        retryable = op != "shutdown" and self._address is not None
        attempts = self._retry.attempts if retryable else 1
        last_exc: Optional[ServiceError] = None
        for attempt in range(attempts):
            if attempt:
                await asyncio.sleep(self._retry.delay(attempt - 1))
            if self._broken and self._address is not None:
                try:
                    await self._reconnect()
                except ServiceError as exc:
                    last_exc = exc
                    continue
            try:
                return await self._request_once(op, fields)
            except (ServiceTimeout, ServiceUnavailable) as exc:
                self._broken = True
                last_exc = exc
        assert last_exc is not None
        raise last_exc

    async def _request_once(
        self, op: str, fields: Dict[str, Any]
    ) -> Dict[str, Any]:
        if self._closed:
            raise ServiceError("client is closed")
        request_id = self._matcher.next_id()
        payload = {"id": request_id, "op": op}
        payload.update(fields)
        try:
            self._writer.write(protocol.encode(payload).encode("utf-8"))
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            raise ServiceUnavailable(f"cannot send request: {exc}") from None
        while True:
            stashed = self._matcher.take(request_id)
            if stashed is not None:
                return stashed
            # One reader at a time; concurrent awaiters pick their own
            # responses out of the stash on the next loop turn.
            async with self._read_lock:
                stashed = self._matcher.take(request_id)
                if stashed is not None:
                    return stashed
                try:
                    raw = await asyncio.wait_for(
                        self._reader.readline(),
                        timeout=self._request_timeout_s,
                    )
                except asyncio.TimeoutError:
                    raise ServiceTimeout(
                        "no response within "
                        f"{self._request_timeout_s:g}s"
                    ) from None
                except (ConnectionError, OSError) as exc:
                    raise ServiceUnavailable(
                        f"cannot read response: {exc}"
                    ) from None
                if not raw:
                    raise ServiceUnavailable("server closed the connection")
                line = raw.decode("utf-8", errors="replace")
                if not line.strip():
                    continue
                response = _decode_response(line)
                if self._matcher.offer(response, request_id):
                    return response

    async def verify(
        self,
        program: Union[str, Any],
        config: Optional[Union[VerifierConfig, Dict]] = None,
        deadline_s: Optional[float] = None,
        language: Optional[str] = None,
        filename: Optional[str] = None,
    ) -> VerificationResult:
        fields = _prepare_verify_fields(
            program, config, deadline_s, language=language, filename=filename
        )
        if self._hedge_after_s is None or self._address is None:
            return _result_from_response(
                await self.request("verify", **fields)
            )
        return _result_from_response(await self._hedged_request(fields))

    async def _hedged_request(self, fields: Dict[str, Any]) -> Dict[str, Any]:
        """Race the primary connection against a late second connection
        carrying the same request; first answer wins (see
        :meth:`ServiceClient.verify` for why this is safe)."""

        async def _hedge() -> Dict[str, Any]:
            hedge_client = await AsyncServiceClient.connect(
                self._address,
                timeout=self._connect_timeout_s,
                request_timeout_s=self._request_timeout_s,
                retry=self._retry,
            )
            try:
                return await hedge_client.request("verify", **fields)
            finally:
                await hedge_client.close()

        primary = asyncio.ensure_future(self.request("verify", **fields))
        done, _ = await asyncio.wait({primary}, timeout=self._hedge_after_s)
        if primary in done:
            return primary.result()
        pending = {primary, asyncio.ensure_future(_hedge())}
        last_exc: Optional[BaseException] = None
        while pending:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            for task in done:
                if task.cancelled():
                    continue
                if task.exception() is None:
                    for other in pending:
                        other.cancel()
                    return task.result()
                last_exc = task.exception()
        assert last_exc is not None
        raise last_exc

    async def analyze(
        self, program: Union[str, Any], unwind: int = 8, width: int = 8
    ) -> Dict[str, Any]:
        fields = _prepare_verify_fields(program, None, None)
        response = _checked(
            await self.request("analyze", unwind=unwind, width=width, **fields)
        )
        from repro.analysis.races import RaceWarning

        report = dict(response["report"])
        report["races"] = [RaceWarning.from_dict(w) for w in report["races"]]
        return report

    async def ping(self) -> Dict[str, Any]:
        return _checked(await self.request("ping"))

    async def stats(self) -> Dict[str, Any]:
        return _checked(await self.request("stats"))["stats"]

    async def health(self) -> Dict[str, Any]:
        return _checked(await self.request("health"))["health"]

    async def ready(self) -> bool:
        return bool(_checked(await self.request("ready"))["ready"])

    async def shutdown(self) -> None:
        try:
            await self.request("shutdown")
        except ServiceError:
            pass

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
