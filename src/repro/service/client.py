"""Typed clients for the verification service.

:class:`ServiceClient` is the synchronous client -- either connected to a
running TCP daemon (:meth:`ServiceClient.connect`) or owning a private
stdio daemon it spawned as a subprocess (:meth:`ServiceClient.spawn`,
handy for tests and one-off scripts: the server dies with the client).
:class:`AsyncServiceClient` is the asyncio variant for TCP.

Both speak the JSON-lines protocol of :mod:`repro.service.protocol` and
translate wire results back into first-class
:class:`~repro.verify.result.VerificationResult` objects, so calling
``client.verify(...)`` is a drop-in for the in-process
:func:`repro.api.verify` -- same type, same verdicts, same stats keys
(plus ``cache_hit`` / ``queue_wait_s`` / ``worker_recycles``).

Protocol-level failures (bad program text, bad config, malformed
responses, a dead server) raise :class:`ServiceError`.  Engine-level
outcomes (budget exhaustion, contained crashes, load shedding) do *not*
raise -- they come back as UNKNOWN/ERROR verdicts, exactly like the
library API.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import socket
import subprocess
import sys
import threading
from typing import Any, Dict, Optional, Union

from repro.service import protocol
from repro.verify.config import VerifierConfig
from repro.verify.result import VerificationResult

__all__ = ["ServiceError", "ServiceClient", "AsyncServiceClient"]


class ServiceError(Exception):
    """The service answered ``ok: false`` or the transport failed."""


def _prepare_verify_fields(
    program: Union[str, Any],
    config: Optional[Union[VerifierConfig, Dict]],
    deadline_s: Optional[float],
) -> Dict[str, Any]:
    if not isinstance(program, str):
        from repro.lang.unparse import unparse

        program = unparse(program)
    fields: Dict[str, Any] = {"source": program}
    if config is not None:
        fields["config"] = (
            config.to_dict() if isinstance(config, VerifierConfig) else config
        )
    if deadline_s is not None:
        fields["deadline_s"] = deadline_s
    return fields


def _result_from_response(response: Dict[str, Any]) -> VerificationResult:
    if not response.get("ok"):
        raise ServiceError(response.get("error", "unspecified service error"))
    try:
        return VerificationResult.from_dict(response["result"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"malformed verify response: {exc}") from None


def _checked(response: Dict[str, Any]) -> Dict[str, Any]:
    if not response.get("ok"):
        raise ServiceError(response.get("error", "unspecified service error"))
    return response


class _RequestMatcher:
    """Shared id-assignment and response-matching logic.

    Responses arrive in completion order, not request order, so both
    clients stash responses whose id is not the one currently awaited
    (relevant once callers pipeline by issuing requests from several
    threads/tasks over one client -- the protocol allows it).
    """

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self._stash: Dict[Any, Dict[str, Any]] = {}

    def next_id(self) -> int:
        return next(self._ids)

    def take(self, request_id: int) -> Optional[Dict[str, Any]]:
        return self._stash.pop(request_id, None)

    def offer(self, response: Dict[str, Any], request_id: int) -> bool:
        """True if ``response`` answers ``request_id``; else stash it."""
        if response.get("id") == request_id:
            return True
        self._stash[response.get("id")] = response
        return False


def _decode_response(line: str) -> Dict[str, Any]:
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"malformed response from server: {exc}") from None
    if not isinstance(obj, dict):
        raise ServiceError(
            f"malformed response from server: expected object, "
            f"got {type(obj).__name__}"
        )
    return obj


class ServiceClient:
    """Synchronous JSON-lines client (see module docstring)."""

    def __init__(self, reader, writer, proc=None, sock=None) -> None:
        self._reader = reader
        self._writer = writer
        self._proc = proc
        self._sock = sock
        self._matcher = _RequestMatcher()
        self._write_lock = threading.Lock()
        self._read_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def connect(cls, address: str, timeout: float = 10.0) -> "ServiceClient":
        """Connect to a running TCP daemon at ``"HOST:PORT"``."""
        host, _, port_text = address.rpartition(":")
        if not host or not port_text.isdigit():
            raise ValueError(f"expected HOST:PORT, got {address!r}")
        try:
            sock = socket.create_connection((host, int(port_text)), timeout)
        except OSError as exc:
            raise ServiceError(
                f"cannot connect to repro service at {address}: {exc}"
            ) from None
        sock.settimeout(None)
        stream = sock.makefile("rw", encoding="utf-8", newline="\n")
        return cls(stream, stream, sock=sock)

    @classmethod
    def spawn(
        cls,
        workers: Optional[int] = None,
        recycle_after: Optional[int] = None,
        max_queue: Optional[int] = None,
        cache_size: Optional[int] = None,
        time_limit_s: Optional[float] = None,
    ) -> "ServiceClient":
        """Start a private ``repro serve --stdio`` daemon and connect to
        it over its pipes.  The daemon exits when the client closes."""
        cmd = [sys.executable, "-m", "repro.cli", "serve", "--stdio"]
        if workers is not None:
            cmd += ["--workers", str(workers)]
        if recycle_after is not None:
            cmd += ["--recycle-after", str(recycle_after)]
        if max_queue is not None:
            cmd += ["--max-queue", str(max_queue)]
        if cache_size is not None:
            cmd += ["--cache-size", str(cache_size)]
        if time_limit_s is not None:
            cmd += ["--time-limit", str(time_limit_s)]
        proc = subprocess.Popen(
            cmd,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            bufsize=1,  # line-buffered pipes: one request/response per line
        )
        return cls(proc.stdout, proc.stdin, proc=proc)

    # ------------------------------------------------------------------
    # Core request/response
    # ------------------------------------------------------------------

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request, block for its (id-matched) response."""
        if self._closed:
            raise ServiceError("client is closed")
        request_id = self._matcher.next_id()
        payload = {"id": request_id, "op": op}
        payload.update(fields)
        try:
            with self._write_lock:
                self._writer.write(protocol.encode(payload))
                self._writer.flush()
        except (OSError, ValueError, BrokenPipeError) as exc:
            raise ServiceError(f"cannot send request: {exc}") from None
        while True:
            stashed = self._matcher.take(request_id)
            if stashed is not None:
                return stashed
            # One reader at a time; a pipelining thread whose response was
            # read (and stashed) by another thread picks it up on the next
            # loop turn instead of blocking in readline() forever.
            with self._read_lock:
                stashed = self._matcher.take(request_id)
                if stashed is not None:
                    return stashed
                try:
                    line = self._reader.readline()
                except OSError as exc:
                    raise ServiceError(
                        f"cannot read response: {exc}"
                    ) from None
                if not line:
                    raise ServiceError("server closed the connection")
                if not line.strip():
                    continue
                response = _decode_response(line)
                if self._matcher.offer(response, request_id):
                    return response

    # ------------------------------------------------------------------
    # Typed operations
    # ------------------------------------------------------------------

    def verify(
        self,
        program: Union[str, Any],
        config: Optional[Union[VerifierConfig, Dict]] = None,
        deadline_s: Optional[float] = None,
    ) -> VerificationResult:
        """Verify ``program`` (source text or AST) on the server.

        Returns the same :class:`VerificationResult` the in-process API
        would, with the service stats (``cache_hit``, ``queue_wait_s``,
        ``worker_recycles``) merged into ``result.stats``.
        """
        fields = _prepare_verify_fields(program, config, deadline_s)
        return _result_from_response(self.request("verify", **fields))

    def analyze(
        self, program: Union[str, Any], unwind: int = 8, width: int = 8
    ) -> Dict[str, Any]:
        """Static race report; ``races`` holds RaceWarning objects."""
        fields = _prepare_verify_fields(program, None, None)
        response = _checked(
            self.request("analyze", unwind=unwind, width=width, **fields)
        )
        from repro.analysis.races import RaceWarning

        report = dict(response["report"])
        report["races"] = [RaceWarning.from_dict(w) for w in report["races"]]
        return report

    def ping(self) -> Dict[str, Any]:
        return _checked(self.request("ping"))

    def stats(self) -> Dict[str, Any]:
        return _checked(self.request("stats"))["stats"]

    def shutdown(self) -> None:
        """Ask the server to exit (tolerates it dying before answering)."""
        try:
            self.request("shutdown")
        except ServiceError:
            pass

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._proc is not None:
            # Closing stdin is the stdio server's EOF; it drains and exits.
            try:
                self._writer.close()
            except OSError:
                pass
            try:
                self._proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                self._proc.kill()
                self._proc.wait(timeout=5.0)
            try:
                self._reader.close()
            except OSError:
                pass
            return
        for stream in {self._writer, self._reader}:
            try:
                stream.close()
            except OSError:
                pass
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncServiceClient:
    """Asyncio TCP client mirroring :class:`ServiceClient`."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._matcher = _RequestMatcher()
        self._read_lock = asyncio.Lock()
        self._closed = False

    @classmethod
    async def connect(cls, address: str) -> "AsyncServiceClient":
        host, _, port_text = address.rpartition(":")
        if not host or not port_text.isdigit():
            raise ValueError(f"expected HOST:PORT, got {address!r}")
        try:
            reader, writer = await asyncio.open_connection(
                host, int(port_text)
            )
        except OSError as exc:
            raise ServiceError(
                f"cannot connect to repro service at {address}: {exc}"
            ) from None
        return cls(reader, writer)

    async def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        if self._closed:
            raise ServiceError("client is closed")
        request_id = self._matcher.next_id()
        payload = {"id": request_id, "op": op}
        payload.update(fields)
        try:
            self._writer.write(protocol.encode(payload).encode("utf-8"))
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            raise ServiceError(f"cannot send request: {exc}") from None
        while True:
            stashed = self._matcher.take(request_id)
            if stashed is not None:
                return stashed
            # One reader at a time; concurrent awaiters pick their own
            # responses out of the stash on the next loop turn.
            async with self._read_lock:
                stashed = self._matcher.take(request_id)
                if stashed is not None:
                    return stashed
                try:
                    raw = await self._reader.readline()
                except (ConnectionError, OSError) as exc:
                    raise ServiceError(
                        f"cannot read response: {exc}"
                    ) from None
                if not raw:
                    raise ServiceError("server closed the connection")
                line = raw.decode("utf-8", errors="replace")
                if not line.strip():
                    continue
                response = _decode_response(line)
                if self._matcher.offer(response, request_id):
                    return response

    async def verify(
        self,
        program: Union[str, Any],
        config: Optional[Union[VerifierConfig, Dict]] = None,
        deadline_s: Optional[float] = None,
    ) -> VerificationResult:
        fields = _prepare_verify_fields(program, config, deadline_s)
        return _result_from_response(await self.request("verify", **fields))

    async def analyze(
        self, program: Union[str, Any], unwind: int = 8, width: int = 8
    ) -> Dict[str, Any]:
        fields = _prepare_verify_fields(program, None, None)
        response = _checked(
            await self.request("analyze", unwind=unwind, width=width, **fields)
        )
        from repro.analysis.races import RaceWarning

        report = dict(response["report"])
        report["races"] = [RaceWarning.from_dict(w) for w in report["races"]]
        return report

    async def ping(self) -> Dict[str, Any]:
        return _checked(await self.request("ping"))

    async def stats(self) -> Dict[str, Any]:
        return _checked(await self.request("stats"))["stats"]

    async def shutdown(self) -> None:
        try:
            await self.request("shutdown")
        except ServiceError:
            pass

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
