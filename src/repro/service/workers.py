"""The warm worker pool behind the verification service.

Verification is CPU-bound pure Python, so concurrency comes from worker
*processes*.  What makes them "warm" is lifecycle, not magic:

* every worker **pre-imports the whole solver stack** on startup (parser,
  SSA frontend, encoder, SAT core, T_ord theory, baselines), so no job
  ever pays cold-import latency -- under the default ``fork`` start
  method the import cost is paid exactly once, in the parent;
* workers are **recycled** -- retired and replaced by a fresh process --
  after ``recycle_after`` jobs, and immediately after any job that
  exhausted its *memory* budget: CPython rarely returns freed heap to the
  OS, so a worker that just built a pathological encoding stays bloated
  forever unless replaced.  The pool's ``recycles`` counter is surfaced
  as the ``worker_recycles`` service stat;
* a worker that **dies mid-job** (OOM killer, segfault) is detected by
  the collector; its in-flight jobs fail with an ERROR payload instead of
  hanging their requests, and a replacement is spawned.

Jobs are ``(source, config_dict, ckpt_token)`` triples submitted with
:meth:`WorkerPool.submit`, which returns a
:class:`concurrent.futures.Future` resolving to the wire-format result
dict -- the asyncio server awaits these with ``asyncio.wrap_future``.
With a ``checkpoint_dir`` configured, jobs that carry a token get
durable per-bound checkpoint/resume through the iterative-deepening
loop (see :mod:`repro.service.checkpoints`).
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue as queue_mod
import threading
import time
from concurrent.futures import Future
from typing import Any, Dict, Optional, Tuple

__all__ = ["WorkerPool"]

#: Fallback pool size: half the machine for solving, capped -- the server
#: process itself needs headroom for parsing/canonicalization.
_DEFAULT_SIZE = max(1, min(4, (os.cpu_count() or 2) // 2))

#: Message kinds on the result queue.
_MSG_START = "start"
_MSG_DONE = "done"


def _warm_imports() -> None:
    """Import every module a verification job touches.

    Ordered roughly by import cost; the point is that the *first* job on
    a fresh worker is as fast as the hundredth.
    """
    import repro.lang.parser  # noqa: F401
    import repro.lang.sema  # noqa: F401
    import repro.frontend.ssa  # noqa: F401
    import repro.analysis.prune  # noqa: F401
    import repro.encoding.encoder  # noqa: F401
    import repro.encoding.bitblast  # noqa: F401
    import repro.sat.solver  # noqa: F401
    import repro.ordering.solver  # noqa: F401
    import repro.ordering.icd  # noqa: F401
    import repro.ordering.tarjan  # noqa: F401
    import repro.baselines.closure  # noqa: F401
    import repro.baselines.explicit  # noqa: F401
    import repro.baselines.lazyseq  # noqa: F401
    import repro.baselines.idl  # noqa: F401
    import repro.smc.rfsc  # noqa: F401
    import repro.smc.genmc  # noqa: F401
    import repro.verify.verifier  # noqa: F401
    import repro.verify.engines  # noqa: F401


def _worker_main(
    wid: int,
    job_q,
    result_q,
    recycle_after: int,
    checkpoint_dir: Optional[str] = None,
    job_slot=None,
) -> None:
    """Worker process entry point: warm up, then serve jobs until retired.

    Reports ``(job_id, wid, kind, payload, wall_ts)`` tuples: a ``start``
    when a job is picked up (lets the parent attribute in-flight jobs and
    measure queue wait) and a ``done`` with the result payload.  Retires
    itself -- finishes the current job, announces why, and exits -- after
    the job quota or a memory-budget-triggered UNKNOWN.

    With a ``checkpoint_dir``, jobs carrying a checkpoint token get
    durable per-bound progress: an iterative-deepening run saves a
    checkpoint after every completed bound, a re-dispatched job resumes
    its schedule past the last completed bound (stamping
    ``resumed_from_bound`` / ``bounds_skipped`` into the result stats),
    and a conclusive verdict discards the checkpoint -- the verdict
    cache takes over as the durable record.
    """
    _warm_imports()
    from repro.lang.lexer import LexError
    from repro.lang.parser import ParseError
    from repro.lang.sema import SemanticError
    from repro.robustness.faults import fault_point
    from repro.service.checkpoints import CheckpointStore
    from repro.verify.checkpoint import Checkpoint, checkpoint_sink
    from repro.verify.config import VerifierConfig
    from repro.verify.verifier import verify_one

    store = CheckpointStore(checkpoint_dir) if checkpoint_dir else None
    jobs_done = 0
    while True:
        item = job_q.get()
        if item is None:
            return
        job_id, source, config_dict, ckpt_token = item
        # Claim the job in shared memory BEFORE the queue message: queue
        # puts are flushed by a feeder thread, so a worker killed right
        # after pickup may die with the START still buffered -- the slot
        # write is immediate and survives SIGKILL, letting the parent
        # fail this job instead of hanging its request.
        if job_slot is not None:
            job_slot.value = job_id
        result_q.put((job_id, wid, _MSG_START, None, time.time()))
        try:
            # Chaos hook: kill@service_worker dies here, mid-job from the
            # parent's point of view (START reported, no DONE coming).
            fault_point("service_worker")
            config = (
                VerifierConfig.from_dict(config_dict)
                if config_dict
                else VerifierConfig()
            )
            config, sink, resumed_from, skipped = _prepare_resume(
                store, ckpt_token, config, Checkpoint
            )
            with checkpoint_sink(sink):
                result = verify_one(source, config)
            if resumed_from is not None:
                result.stats["resumed_from_bound"] = resumed_from
                result.stats["bounds_skipped"] = skipped
            if store is not None and ckpt_token and result.verdict in (
                "safe",
                "unsafe",
            ):
                store.discard(ckpt_token)
            payload = {"result": result.to_dict()}
        except (LexError, ParseError, SemanticError, ValueError) as exc:
            # Input errors: bad program text or a bad config dict.
            payload = {"input_error": f"{type(exc).__name__}: {exc}"}
        except BaseException as exc:  # noqa: BLE001 - report, then retire
            payload = {"error": f"{type(exc).__name__}: {exc}"}
        jobs_done += 1
        retire = None
        if "error" in payload:
            retire = "crash"
        elif jobs_done >= recycle_after:
            retire = "jobs"
        elif _hit_memory_budget(payload):
            retire = "memory"
        payload["retire"] = retire
        result_q.put((job_id, wid, _MSG_DONE, payload, time.time()))
        # Release the claim only after the DONE is queued: dying between
        # the two leaves the slot set, and the parent's drain-then-reap
        # order resolves the future from whichever record survived.
        if job_slot is not None:
            job_slot.value = 0
        if retire is not None:
            return


def _prepare_resume(store, token, config, checkpoint_cls):
    """Resume plumbing for one job: ``(config, sink, resumed_from,
    bounds_skipped)``.

    With a prior checkpoint, the returned config's ``unwind_schedule`` is
    trimmed to the bounds past the last completed one and ``resumed_from``
    is that bound (else ``None``).  The returned sink persists every
    checkpoint the engine emits -- rewritten against the job's *original*
    schedule, with the prior run's completed bounds and solver effort
    merged in, so a twice-interrupted job validates and resumes correctly
    on its third dispatch (the engine only ever sees trimmed schedules).
    """
    schedule = config.unwind_schedule
    if store is None or not token or not schedule:
        return config, None, None, 0
    prior = store.load(token, schedule)
    resumed_from = None
    skipped = 0
    if prior is not None:
        config = config.with_(unwind_schedule=prior.remaining())
        resumed_from = prior.completed[-1]
        skipped = len(prior.completed)
    prior_completed = prior.completed if prior is not None else ()
    prior_conflicts = prior.conflicts if prior is not None else 0
    prior_elapsed = prior.elapsed_s if prior is not None else 0.0

    def sink(cp) -> None:
        store.save(
            token,
            checkpoint_cls(
                schedule=tuple(schedule),
                completed=tuple(prior_completed) + tuple(cp.completed),
                conflicts=prior_conflicts + cp.conflicts,
                clauses_retained=cp.clauses_retained,
                elapsed_s=round(prior_elapsed + cp.elapsed_s, 6),
            ),
        )

    return config, sink, resumed_from, skipped


def _hit_memory_budget(payload: Dict) -> bool:
    """Did this job end as a memory-budget UNKNOWN?  The worker's heap is
    then bloated with an encoding CPython will not return to the OS."""
    result = payload.get("result")
    if not result or result.get("verdict") != "unknown":
        return False
    return result.get("stats", {}).get("budget_limit") == "memory"


class WorkerPool:
    """A fixed-size pool of warm, recycled verification workers."""

    def __init__(
        self,
        size: Optional[int] = None,
        recycle_after: int = 64,
        mp_context: Optional[multiprocessing.context.BaseContext] = None,
        checkpoint_dir: Optional[str] = None,
    ) -> None:
        if recycle_after < 1:
            raise ValueError(f"recycle_after must be >= 1, got {recycle_after}")
        self.size = size or _DEFAULT_SIZE
        self.recycle_after = recycle_after
        self.checkpoint_dir = checkpoint_dir
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
        self._ctx = mp_context
        self._job_q = self._ctx.Queue()
        self._result_q = self._ctx.Queue()
        self._lock = threading.Lock()
        self._futures: Dict[int, Future] = {}
        self._submitted_at: Dict[int, float] = {}
        self._queue_wait: Dict[int, float] = {}
        self._assigned: Dict[int, int] = {}  # job_id -> wid
        self._procs: Dict[int, multiprocessing.process.BaseProcess] = {}
        # wid -> shared int64: the job the worker is holding right now
        # (0 = idle).  Written by the worker before its START message can
        # even flush, so a SIGKILL mid-pickup still tells us which job
        # died with it.
        self._slots: Dict[int, Any] = {}
        self._job_ids = itertools.count(1)
        self._wids = itertools.count(1)
        #: Workers replaced so far (quota, memory recycle, or death).
        self.recycles = 0
        self.jobs_done = 0
        self._closed = False
        for _ in range(self.size):
            self._spawn_worker()
        self._collector = threading.Thread(
            target=self._collect, name="service-pool-collector", daemon=True
        )
        self._collector.start()

    # ------------------------------------------------------------------
    # Parent-side API
    # ------------------------------------------------------------------

    def submit(
        self,
        source: str,
        config_dict: Optional[Dict],
        ckpt_token: Optional[str] = None,
    ) -> Tuple[int, Future, float]:
        """Enqueue one job; returns ``(job_id, future, submitted_at)``.

        The future resolves to the worker's payload dict:
        ``{"result": ...}`` on a completed verification (any verdict),
        ``{"input_error": ...}`` on bad input, or raises on worker death.
        The payload also carries ``queue_wait_s`` once resolved.

        ``ckpt_token`` (the job's cache-key token) enables durable
        checkpoint/resume for this job when the pool has a
        ``checkpoint_dir``.
        """
        if self._closed:
            raise RuntimeError("WorkerPool is shut down")
        fut: Future = Future()
        submitted = time.time()
        with self._lock:
            job_id = next(self._job_ids)
            self._futures[job_id] = fut
            self._submitted_at[job_id] = submitted
        self._job_q.put((job_id, source, config_dict, ckpt_token))
        return job_id, fut, submitted

    def alive(self) -> int:
        """Workers currently alive (health/readiness probes)."""
        return sum(1 for p in self._procs.values() if p.is_alive())

    def pending(self) -> int:
        """Jobs submitted but not yet resolved (queued + in flight)."""
        with self._lock:
            return len(self._futures)

    def shutdown(self, grace_s: float = 2.0) -> None:
        """Stop the pool: sentinel every worker, then escalate."""
        self._closed = True
        for _ in range(len(self._procs)):
            try:
                self._job_q.put_nowait(None)
            except Exception:
                break
        deadline = time.monotonic() + grace_s
        for proc in list(self._procs.values()):
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
            if proc.is_alive():
                proc.kill()
        with self._lock:
            futures = list(self._futures.values())
            self._futures.clear()
            self._submitted_at.clear()
            self._queue_wait.clear()
            self._assigned.clear()
        for fut in futures:
            if not fut.done():
                fut.set_exception(RuntimeError("worker pool shut down"))
        self._job_q.close()
        self._job_q.cancel_join_thread()
        self._result_q.close()
        self._result_q.cancel_join_thread()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _spawn_worker(self) -> None:
        wid = next(self._wids)
        slot = self._ctx.Value("q", 0, lock=False)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                wid,
                self._job_q,
                self._result_q,
                self.recycle_after,
                self.checkpoint_dir,
                slot,
            ),
            daemon=True,
            name=f"service-worker-{wid}",
        )
        proc.start()
        self._procs[wid] = proc
        self._slots[wid] = slot

    def _collect(self) -> None:
        """Collector thread: resolve futures, recycle retired workers,
        reap the dead."""
        while not self._closed:
            try:
                message = self._result_q.get(timeout=0.2)
            except (queue_mod.Empty, OSError, EOFError, ValueError):
                # ValueError: shutdown() closed the queue under us.
                self._reap_dead()
                continue
            self._handle_message(*message)
        # Drain on shutdown: nothing to do, shutdown() fails leftovers.

    def _handle_message(self, job_id, wid, kind, payload, wall_ts) -> None:
        """Process one worker message (a job START or DONE)."""
        if kind == _MSG_START:
            # Wall-clock queue wait, measured across processes (same
            # machine, same clock).
            with self._lock:
                self._assigned[job_id] = wid
                submitted = self._submitted_at.pop(job_id, None)
                if submitted is not None:
                    self._queue_wait[job_id] = max(0.0, wall_ts - submitted)
            return
        with self._lock:
            fut = self._futures.pop(job_id, None)
            wait = self._queue_wait.pop(job_id, 0.0)
            self._submitted_at.pop(job_id, None)
            self._assigned.pop(job_id, None)
        retire = payload.pop("retire", None) if payload else None
        if fut is not None and not fut.done():
            payload = payload or {}
            payload["queue_wait_s"] = round(wait, 6)
            self.jobs_done += 1
            fut.set_result(payload)
        if retire is not None:
            self._retire(wid)

    def _retire(self, wid: int) -> None:
        """A worker announced retirement: join it, spawn a replacement."""
        proc = self._procs.pop(wid, None)
        self._slots.pop(wid, None)
        if proc is not None:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
        self.recycles += 1
        if not self._closed:
            self._spawn_worker()

    def _reap_dead(self) -> None:
        """Detect workers that died without retiring; fail their jobs."""
        dead = [w for w, p in self._procs.items() if not p.is_alive()]
        if not dead:
            return
        # A retiring worker exits right after queueing its DONE message,
        # so "process dead" can be observed before the message is read.
        # Drain everything already queued first: a completed job's real
        # payload must win over (and its retirement replace) the
        # died-mid-job diagnosis below.
        while True:
            try:
                message = self._result_q.get_nowait()
            except (queue_mod.Empty, OSError, EOFError, ValueError):
                break  # ValueError: shutdown() closed the queue under us
            self._handle_message(*message)
        for wid in dead:
            proc = self._procs.pop(wid, None)
            slot = self._slots.pop(wid, None)
            if proc is None:
                continue  # retired cleanly via its drained DONE message
            proc.join(timeout=0.5)
            with self._lock:
                lost = [
                    j for j, w in self._assigned.items() if w == wid
                ]
                # The worker may have died between consuming a job and
                # flushing its START message (queue puts go through a
                # feeder thread): the shared slot it wrote synchronously
                # at pickup is the authoritative claim.
                if slot is not None and slot.value and slot.value not in lost:
                    lost.append(slot.value)
                futures = []
                for job_id in lost:
                    fut = self._futures.pop(job_id, None)
                    self._submitted_at.pop(job_id, None)
                    self._queue_wait.pop(job_id, None)
                    self._assigned.pop(job_id, None)
                    if fut is not None:
                        futures.append(fut)
            for fut in futures:
                if not fut.done():
                    fut.set_result(
                        {
                            "error": "worker died mid-job "
                            f"(exitcode {proc.exitcode})"
                        }
                    )
            self.recycles += 1
            if not self._closed:
                self._spawn_worker()
