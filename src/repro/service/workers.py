"""The warm worker pool behind the verification service.

Verification is CPU-bound pure Python, so concurrency comes from worker
*processes*.  What makes them "warm" is lifecycle, not magic:

* every worker **pre-imports the whole solver stack** on startup (parser,
  SSA frontend, encoder, SAT core, T_ord theory, baselines), so no job
  ever pays cold-import latency -- under the default ``fork`` start
  method the import cost is paid exactly once, in the parent;
* workers are **recycled** -- retired and replaced by a fresh process --
  after ``recycle_after`` jobs, and immediately after any job that
  exhausted its *memory* budget: CPython rarely returns freed heap to the
  OS, so a worker that just built a pathological encoding stays bloated
  forever unless replaced.  The pool's ``recycles`` counter is surfaced
  as the ``worker_recycles`` service stat;
* a worker that **dies mid-job** (OOM killer, segfault) is detected by
  the collector; its in-flight jobs fail with an ERROR payload instead of
  hanging their requests, and a replacement is spawned.

Jobs are ``(source, config_dict)`` pairs submitted with
:meth:`WorkerPool.submit`, which returns a
:class:`concurrent.futures.Future` resolving to the wire-format result
dict -- the asyncio server awaits these with ``asyncio.wrap_future``.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue as queue_mod
import threading
import time
from concurrent.futures import Future
from typing import Dict, Optional, Tuple

__all__ = ["WorkerPool"]

#: Fallback pool size: half the machine for solving, capped -- the server
#: process itself needs headroom for parsing/canonicalization.
_DEFAULT_SIZE = max(1, min(4, (os.cpu_count() or 2) // 2))

#: Message kinds on the result queue.
_MSG_START = "start"
_MSG_DONE = "done"


def _warm_imports() -> None:
    """Import every module a verification job touches.

    Ordered roughly by import cost; the point is that the *first* job on
    a fresh worker is as fast as the hundredth.
    """
    import repro.lang.parser  # noqa: F401
    import repro.lang.sema  # noqa: F401
    import repro.frontend.ssa  # noqa: F401
    import repro.analysis.prune  # noqa: F401
    import repro.encoding.encoder  # noqa: F401
    import repro.encoding.bitblast  # noqa: F401
    import repro.sat.solver  # noqa: F401
    import repro.ordering.solver  # noqa: F401
    import repro.ordering.icd  # noqa: F401
    import repro.ordering.tarjan  # noqa: F401
    import repro.baselines.closure  # noqa: F401
    import repro.baselines.explicit  # noqa: F401
    import repro.baselines.lazyseq  # noqa: F401
    import repro.baselines.idl  # noqa: F401
    import repro.smc.rfsc  # noqa: F401
    import repro.smc.genmc  # noqa: F401
    import repro.verify.verifier  # noqa: F401
    import repro.verify.engines  # noqa: F401


def _worker_main(wid: int, job_q, result_q, recycle_after: int) -> None:
    """Worker process entry point: warm up, then serve jobs until retired.

    Reports ``(job_id, wid, kind, payload, wall_ts)`` tuples: a ``start``
    when a job is picked up (lets the parent attribute in-flight jobs and
    measure queue wait) and a ``done`` with the result payload.  Retires
    itself -- finishes the current job, announces why, and exits -- after
    the job quota or a memory-budget-triggered UNKNOWN.
    """
    _warm_imports()
    from repro.lang.lexer import LexError
    from repro.lang.parser import ParseError
    from repro.lang.sema import SemanticError
    from repro.verify.config import VerifierConfig
    from repro.verify.verifier import verify_one

    jobs_done = 0
    while True:
        item = job_q.get()
        if item is None:
            return
        job_id, source, config_dict = item
        result_q.put((job_id, wid, _MSG_START, None, time.time()))
        try:
            config = (
                VerifierConfig.from_dict(config_dict)
                if config_dict
                else VerifierConfig()
            )
            result = verify_one(source, config)
            payload = {"result": result.to_dict()}
        except (LexError, ParseError, SemanticError, ValueError) as exc:
            # Input errors: bad program text or a bad config dict.
            payload = {"input_error": f"{type(exc).__name__}: {exc}"}
        except BaseException as exc:  # noqa: BLE001 - report, then retire
            payload = {"error": f"{type(exc).__name__}: {exc}"}
        jobs_done += 1
        retire = None
        if "error" in payload:
            retire = "crash"
        elif jobs_done >= recycle_after:
            retire = "jobs"
        elif _hit_memory_budget(payload):
            retire = "memory"
        payload["retire"] = retire
        result_q.put((job_id, wid, _MSG_DONE, payload, time.time()))
        if retire is not None:
            return


def _hit_memory_budget(payload: Dict) -> bool:
    """Did this job end as a memory-budget UNKNOWN?  The worker's heap is
    then bloated with an encoding CPython will not return to the OS."""
    result = payload.get("result")
    if not result or result.get("verdict") != "unknown":
        return False
    return result.get("stats", {}).get("budget_limit") == "memory"


class WorkerPool:
    """A fixed-size pool of warm, recycled verification workers."""

    def __init__(
        self,
        size: Optional[int] = None,
        recycle_after: int = 64,
        mp_context: Optional[multiprocessing.context.BaseContext] = None,
    ) -> None:
        if recycle_after < 1:
            raise ValueError(f"recycle_after must be >= 1, got {recycle_after}")
        self.size = size or _DEFAULT_SIZE
        self.recycle_after = recycle_after
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
        self._ctx = mp_context
        self._job_q = self._ctx.Queue()
        self._result_q = self._ctx.Queue()
        self._lock = threading.Lock()
        self._futures: Dict[int, Future] = {}
        self._submitted_at: Dict[int, float] = {}
        self._queue_wait: Dict[int, float] = {}
        self._assigned: Dict[int, int] = {}  # job_id -> wid
        self._procs: Dict[int, multiprocessing.process.BaseProcess] = {}
        self._job_ids = itertools.count(1)
        self._wids = itertools.count(1)
        #: Workers replaced so far (quota, memory recycle, or death).
        self.recycles = 0
        self.jobs_done = 0
        self._closed = False
        for _ in range(self.size):
            self._spawn_worker()
        self._collector = threading.Thread(
            target=self._collect, name="service-pool-collector", daemon=True
        )
        self._collector.start()

    # ------------------------------------------------------------------
    # Parent-side API
    # ------------------------------------------------------------------

    def submit(
        self, source: str, config_dict: Optional[Dict]
    ) -> Tuple[int, Future, float]:
        """Enqueue one job; returns ``(job_id, future, submitted_at)``.

        The future resolves to the worker's payload dict:
        ``{"result": ...}`` on a completed verification (any verdict),
        ``{"input_error": ...}`` on bad input, or raises on worker death.
        The payload also carries ``queue_wait_s`` once resolved.
        """
        if self._closed:
            raise RuntimeError("WorkerPool is shut down")
        fut: Future = Future()
        submitted = time.time()
        with self._lock:
            job_id = next(self._job_ids)
            self._futures[job_id] = fut
            self._submitted_at[job_id] = submitted
        self._job_q.put((job_id, source, config_dict))
        return job_id, fut, submitted

    def pending(self) -> int:
        """Jobs submitted but not yet resolved (queued + in flight)."""
        with self._lock:
            return len(self._futures)

    def shutdown(self, grace_s: float = 2.0) -> None:
        """Stop the pool: sentinel every worker, then escalate."""
        self._closed = True
        for _ in range(len(self._procs)):
            try:
                self._job_q.put_nowait(None)
            except Exception:
                break
        deadline = time.monotonic() + grace_s
        for proc in list(self._procs.values()):
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
            if proc.is_alive():
                proc.kill()
        with self._lock:
            futures = list(self._futures.values())
            self._futures.clear()
            self._submitted_at.clear()
            self._queue_wait.clear()
            self._assigned.clear()
        for fut in futures:
            if not fut.done():
                fut.set_exception(RuntimeError("worker pool shut down"))
        self._job_q.close()
        self._job_q.cancel_join_thread()
        self._result_q.close()
        self._result_q.cancel_join_thread()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _spawn_worker(self) -> None:
        wid = next(self._wids)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(wid, self._job_q, self._result_q, self.recycle_after),
            daemon=True,
            name=f"service-worker-{wid}",
        )
        proc.start()
        self._procs[wid] = proc

    def _collect(self) -> None:
        """Collector thread: resolve futures, recycle retired workers,
        reap the dead."""
        while not self._closed:
            try:
                message = self._result_q.get(timeout=0.2)
            except (queue_mod.Empty, OSError, EOFError, ValueError):
                # ValueError: shutdown() closed the queue under us.
                self._reap_dead()
                continue
            self._handle_message(*message)
        # Drain on shutdown: nothing to do, shutdown() fails leftovers.

    def _handle_message(self, job_id, wid, kind, payload, wall_ts) -> None:
        """Process one worker message (a job START or DONE)."""
        if kind == _MSG_START:
            # Wall-clock queue wait, measured across processes (same
            # machine, same clock).
            with self._lock:
                self._assigned[job_id] = wid
                submitted = self._submitted_at.pop(job_id, None)
                if submitted is not None:
                    self._queue_wait[job_id] = max(0.0, wall_ts - submitted)
            return
        with self._lock:
            fut = self._futures.pop(job_id, None)
            wait = self._queue_wait.pop(job_id, 0.0)
            self._submitted_at.pop(job_id, None)
            self._assigned.pop(job_id, None)
        retire = payload.pop("retire", None) if payload else None
        if fut is not None and not fut.done():
            payload = payload or {}
            payload["queue_wait_s"] = round(wait, 6)
            self.jobs_done += 1
            fut.set_result(payload)
        if retire is not None:
            self._retire(wid)

    def _retire(self, wid: int) -> None:
        """A worker announced retirement: join it, spawn a replacement."""
        proc = self._procs.pop(wid, None)
        if proc is not None:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
        self.recycles += 1
        if not self._closed:
            self._spawn_worker()

    def _reap_dead(self) -> None:
        """Detect workers that died without retiring; fail their jobs."""
        dead = [w for w, p in self._procs.items() if not p.is_alive()]
        if not dead:
            return
        # A retiring worker exits right after queueing its DONE message,
        # so "process dead" can be observed before the message is read.
        # Drain everything already queued first: a completed job's real
        # payload must win over (and its retirement replace) the
        # died-mid-job diagnosis below.
        while True:
            try:
                message = self._result_q.get_nowait()
            except (queue_mod.Empty, OSError, EOFError, ValueError):
                break  # ValueError: shutdown() closed the queue under us
            self._handle_message(*message)
        for wid in dead:
            proc = self._procs.pop(wid, None)
            if proc is None:
                continue  # retired cleanly via its drained DONE message
            proc.join(timeout=0.5)
            with self._lock:
                lost = [
                    j for j, w in self._assigned.items() if w == wid
                ]
                futures = []
                for job_id in lost:
                    fut = self._futures.pop(job_id, None)
                    self._submitted_at.pop(job_id, None)
                    self._queue_wait.pop(job_id, None)
                    self._assigned.pop(job_id, None)
                    if fut is not None:
                        futures.append(fut)
            for fut in futures:
                if not fut.done():
                    fut.set_result(
                        {
                            "error": "worker died mid-job "
                            f"(exitcode {proc.exitcode})"
                        }
                    )
            self.recycles += 1
            if not self._closed:
                self._spawn_worker()
