"""The service wire format: versioned JSON lines.

Every request and every response is one JSON object on one line
(newline-terminated, UTF-8).  Responses carry the ``id`` of the request
they answer; within one connection requests may be pipelined and are
answered in completion order, so clients must match on ``id``.

Requests::

    {"id": 1, "op": "verify", "source": "...",
     "language": "mini" | "python" (optional, default "mini"),
     "filename": "prog.py" (optional, diagnostics only),
     "config": {"preset": "zord", "unwind": 8, ...} | null,
     "deadline_s": 10.0 | null}
    {"id": 2, "op": "analyze", "source": "...", "unwind": 8, "width": 8}
    {"id": 3, "op": "ping"}
    {"id": 4, "op": "stats"}
    {"id": 5, "op": "health"}
    {"id": 6, "op": "ready"}
    {"id": 7, "op": "shutdown"}

Responses (``"ok": true``)::

    verify   -> {"id", "ok", "result": VerificationResult.to_dict(),
                 "cache_hit": bool, "queue_wait_s": float}
    analyze  -> {"id", "ok", "report": {"races": [RaceWarning...],
                 "pairs_total", "pairs_ordered", "pairs_protected",
                 "pairs_racy"}}
    ping     -> {"id", "ok", "pong": true, "protocol": PROTOCOL_VERSION}
    stats    -> {"id", "ok", "stats": {...server counters...}}
    health   -> {"id", "ok", "health": {"status": "ok"|"draining",
                 "draining", "queue_depth", "workers", "workers_alive",
                 ...cache counters...}}
    ready    -> {"id", "ok", "ready": bool, "reason": str|null}
    shutdown -> {"id", "ok", "bye": true}

``health`` is a liveness probe (always answered, even mid-drain);
``ready`` is an admission probe -- false while draining or while the
worker pool has no live workers, so load balancers and wrapper scripts
can stop routing before requests start getting shed.

Protocol errors -- malformed JSON, a missing/unknown ``op``, a request
line over :data:`MAX_REQUEST_BYTES`, an unparseable program, a bad
config -- come back as ``{"id": ..., "ok": false, "error": "..."}``
(``id`` is null when the request line was not even valid JSON).  A line
so oversized the transport cannot even buffer it (more than twice the
cap) is answered with a final error, then the connection is closed --
framing cannot be resynchronized mid-line.  Engine-side failures are
*not* protocol errors: budget exhaustion and contained crashes travel
inside a normal ``verify`` response as UNKNOWN/ERROR verdicts, exactly
like the library API.

``"language": "python"`` submits Python ``threading`` source instead of
mini-language source; the server translates it (:mod:`repro.pyfront`)
before keying the verdict cache, so the cache entry is shared with any
equivalent mini-language submission.  A program outside the supported
Python subset is *also* not a protocol error: it comes back ``ok`` with
a structured ERROR verdict whose diagnostic carries the offending
``filename:line:col`` (workers never see Python source at all).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_REQUEST_BYTES",
    "ProtocolError",
    "OPS",
    "decode_line",
    "encode",
    "error_response",
]

#: Version of the request/response schema; ``ping`` reports it so clients
#: can fail fast on a mismatch.
PROTOCOL_VERSION = 1

#: Upper bound on one request line (bytes of UTF-8).  Far above any real
#: program (the benchmark suite tops out around 10 KB of source) but low
#: enough that a garbage or hostile sender cannot balloon the daemon's
#: heap through a single unbounded line.
MAX_REQUEST_BYTES = 4 * 1024 * 1024

#: The operations a server must answer.
OPS = ("verify", "analyze", "ping", "stats", "health", "ready", "shutdown")


class ProtocolError(Exception):
    """A request violated the wire format (answered with ok=false)."""


def encode(obj: Dict[str, Any]) -> str:
    """One compact JSON line, newline-terminated."""
    return json.dumps(obj, separators=(",", ":")) + "\n"


def decode_line(line: str) -> Dict[str, Any]:
    """Parse one request line; raise :class:`ProtocolError` on anything
    that is not a reasonably-sized JSON object with a known ``op``."""
    if len(line) > MAX_REQUEST_BYTES:
        raise ProtocolError(
            f"request too large: {len(line)} bytes > cap {MAX_REQUEST_BYTES}"
        )
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(obj).__name__}"
        )
    op = obj.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; supported: {', '.join(OPS)}"
        )
    return obj


def error_response(request_id: Optional[Any], message: str) -> Dict[str, Any]:
    return {"id": request_id, "ok": False, "error": message}
