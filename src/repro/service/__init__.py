"""The verification service: a long-lived daemon in front of the verifier.

The paper's pipeline is a one-shot CLI; this package turns it into
infrastructure that can absorb sustained traffic:

* :mod:`repro.service.server` -- an asyncio daemon (``repro serve``)
  accepting verification jobs over stdin JSONL (``--stdio``) or a TCP
  socket (``--tcp HOST:PORT``), with admission control (queue-depth
  shedding to a structured UNKNOWN with ``reason=overloaded``) and
  per-request deadlines riding the :mod:`repro.robustness` budget
  machinery;
* :mod:`repro.service.workers` -- a pool of **warm** worker processes:
  solver modules are pre-imported once, workers are recycled after a job
  quota or after a memory-budget-triggered UNKNOWN (so one pathological
  program cannot bloat a resident worker forever);
* :mod:`repro.service.cache` -- a content-addressed **verdict cache**
  keyed on the canonical parse->unparse normal form of the program times
  the config's encoding signature
  (:func:`repro.portfolio.sharing.encoding_signature`): formula-shaping
  knobs split entries, search-only knobs share them, and inconclusive
  verdicts (UNKNOWN/ERROR) are never cached;
* :mod:`repro.service.persist` + :mod:`repro.service.checkpoints` --
  opt-in durability (``--cache-dir`` / ``REPRO_CACHE_DIR``): a crash-safe
  append-only journal makes cached verdicts survive restarts, and
  per-bound job checkpoints let interrupted iterative-deepening runs
  resume past their last completed bound;
* :mod:`repro.service.protocol` -- the versioned JSON-lines wire format
  (requests, responses, error shapes, the request-size cap);
* :mod:`repro.service.client` -- typed sync (:class:`ServiceClient`) and
  async (:class:`AsyncServiceClient`) clients with connect/request
  timeouts, idempotent retries across reconnects (:class:`RetryPolicy`)
  and optional tail-latency hedging.  ``REPRO_SERVER=HOST:PORT`` makes
  :func:`repro.api.verify` -- and through it the benchmark harness and
  the fuzz oracle -- route jobs here.

See ``docs/SERVICE.md`` for the protocol specification, cache semantics,
worker lifecycle, durability and drain behavior.
"""

from repro.service.cache import (
    VerdictCache,
    cache_key,
    canonical_source,
    key_token,
)
from repro.service.checkpoints import CheckpointStore
from repro.service.client import (
    AsyncServiceClient,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    ServiceTimeout,
    ServiceUnavailable,
)
from repro.service.server import DRAIN_EXIT_CODE, ServiceServer
from repro.service.workers import WorkerPool

__all__ = [
    "ServiceServer",
    "DRAIN_EXIT_CODE",
    "ServiceClient",
    "AsyncServiceClient",
    "ServiceError",
    "ServiceTimeout",
    "ServiceUnavailable",
    "RetryPolicy",
    "WorkerPool",
    "VerdictCache",
    "CheckpointStore",
    "cache_key",
    "canonical_source",
    "key_token",
]
