"""The verification service: a long-lived daemon in front of the verifier.

The paper's pipeline is a one-shot CLI; this package turns it into
infrastructure that can absorb sustained traffic:

* :mod:`repro.service.server` -- an asyncio daemon (``repro serve``)
  accepting verification jobs over stdin JSONL (``--stdio``) or a TCP
  socket (``--tcp HOST:PORT``), with admission control (queue-depth
  shedding to a structured UNKNOWN with ``reason=overloaded``) and
  per-request deadlines riding the :mod:`repro.robustness` budget
  machinery;
* :mod:`repro.service.workers` -- a pool of **warm** worker processes:
  solver modules are pre-imported once, workers are recycled after a job
  quota or after a memory-budget-triggered UNKNOWN (so one pathological
  program cannot bloat a resident worker forever);
* :mod:`repro.service.cache` -- a content-addressed **verdict cache**
  keyed on the canonical parse->unparse normal form of the program times
  the config's encoding signature
  (:func:`repro.portfolio.sharing.encoding_signature`): formula-shaping
  knobs split entries, search-only knobs share them, and inconclusive
  verdicts (UNKNOWN/ERROR) are never cached;
* :mod:`repro.service.protocol` -- the versioned JSON-lines wire format
  (requests, responses, error shapes);
* :mod:`repro.service.client` -- typed sync (:class:`ServiceClient`) and
  async (:class:`AsyncServiceClient`) clients.  ``REPRO_SERVER=HOST:PORT``
  makes :func:`repro.api.verify` -- and through it the benchmark harness
  and the fuzz oracle -- route jobs here.

See ``docs/SERVICE.md`` for the protocol specification, cache semantics,
worker lifecycle and backpressure behavior.
"""

from repro.service.cache import VerdictCache, cache_key, canonical_source
from repro.service.client import AsyncServiceClient, ServiceClient, ServiceError
from repro.service.server import ServiceServer
from repro.service.workers import WorkerPool

__all__ = [
    "ServiceServer",
    "ServiceClient",
    "AsyncServiceClient",
    "ServiceError",
    "WorkerPool",
    "VerdictCache",
    "cache_key",
    "canonical_source",
]
