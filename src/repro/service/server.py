"""The asyncio verification daemon.

One :class:`ServiceServer` owns a :class:`~repro.service.workers.WorkerPool`
(warm, recycled solver processes), a
:class:`~repro.service.cache.VerdictCache` (content-addressed, conclusive
verdicts only), and the service counters.  Transports are thin: both the
stdin-JSONL mode (``repro serve --stdio``) and the TCP mode (``repro
serve --tcp HOST:PORT``) read newline-delimited JSON requests
(:mod:`repro.service.protocol`), handle each one as an independent asyncio
task (so requests pipeline across the pool), and write one response line
per request in completion order.

Request lifecycle for ``verify``:

1. the program is parsed and canonicalized; together with the config's
   encoding signature this addresses the verdict cache -- a hit answers
   immediately with ``cache_hit=true`` and no worker involved;
2. single-flight coalescing: if an identical request (same cache key) is
   already computing, the new one awaits that job's clean result instead
   of submitting a second -- pipelined duplicates cost one worker job and
   report ``cache_hit=true``;
3. admission control: when queued+running jobs have reached ``max_queue``
   the job is **shed** -- a structured UNKNOWN with ``reason=overloaded``
   (and a diagnostic), never an open-ended wait.  Clients see bounded
   latency under overload instead of timeouts;
4. the per-request deadline (``deadline_s``, or the server's default) is
   folded into the config's ``time_limit_s``, so it rides the existing
   cooperative :class:`~repro.robustness.budget.Budget` machinery inside
   the worker -- including fallback chains, which share the one deadline;
5. the result comes back annotated with the service stats
   (``cache_hit``, ``queue_wait_s``, ``worker_recycles``) on top of the
   normalized telemetry every verification already carries, and
   conclusive verdicts are inserted into the cache.

**Durability** (opt-in via ``cache_dir``): the verdict cache journals
every conclusive verdict to a crash-safe log under that directory and
recovers it on the next startup (:mod:`repro.service.persist`), and
workers checkpoint iterative-deepening progress per cache key under
``<cache_dir>/checkpoints/`` so a job interrupted by a worker death or a
daemon restart resumes past its last completed bound
(:mod:`repro.service.checkpoints`).

**Graceful drain**: SIGTERM or SIGINT puts the daemon into *draining*
mode -- new ``verify`` admissions are shed with a structured UNKNOWN
(``reason=draining``), in-flight jobs get up to ``drain_timeout_s`` to
finish, the journal is fsynced, the pool is reaped, and the process
exits with the distinct code :data:`DRAIN_EXIT_CODE` so wrappers can
tell a drain from a crash.  A second signal skips the grace period.
``health`` (always answered, even mid-drain) and ``ready`` (false while
draining or with no live workers) expose the state to probes.
"""

from __future__ import annotations

import asyncio
import copy
import os
import signal
import sys
import threading
import time
from typing import Any, Dict, Optional

from repro.robustness.faults import DropConnection, fault_point
from repro.service import protocol
from repro.service.cache import VerdictCache, cache_key, key_token
from repro.service.checkpoints import CHECKPOINT_DIR_NAME
from repro.service.workers import WorkerPool
from repro.verify.config import VerifierConfig
from repro.verify.result import Verdict, VerificationResult
from repro.verify.telemetry import normalize_stats

__all__ = ["DRAIN_EXIT_CODE", "ServiceServer"]

#: Extra seconds past the request deadline the server waits for a worker
#: before answering UNKNOWN itself (the worker's own budget should have
#: fired long before this).
_DEADLINE_GRACE_S = 10.0

#: Exit code of a daemon stopped by a drain signal (vs 0 for a clean
#: ``shutdown`` op / EOF) -- wrapper scripts distinguish "we asked it to
#: stop and it drained" from crashes.
DRAIN_EXIT_CODE = 3


class ServiceServer:
    """The verification service daemon (see module docstring)."""

    def __init__(
        self,
        workers: Optional[int] = None,
        recycle_after: int = 64,
        max_queue: int = 64,
        cache_size: int = 1024,
        default_time_limit_s: Optional[float] = None,
        verbose: bool = False,
        cache_dir: Optional[str] = None,
        drain_timeout_s: float = 10.0,
    ) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if drain_timeout_s < 0:
            raise ValueError(
                f"drain_timeout_s must be >= 0, got {drain_timeout_s}"
            )
        self._workers = workers
        self._recycle_after = recycle_after
        self.max_queue = max_queue
        self.cache_dir = cache_dir
        self._checkpoint_dir = (
            os.path.join(cache_dir, CHECKPOINT_DIR_NAME) if cache_dir else None
        )
        self.cache = VerdictCache(cache_size, cache_dir=cache_dir)
        self.default_time_limit_s = default_time_limit_s
        self.drain_timeout_s = drain_timeout_s
        self.verbose = verbose
        self.pool: Optional[WorkerPool] = None
        self.started_at = time.monotonic()
        self.jobs_total = 0
        self.jobs_shed = 0
        self.jobs_coalesced = 0
        self.protocol_errors = 0
        self.draining = False
        self._drained_by_signal = False
        #: Bound TCP port once listening (useful with port 0 in tests).
        self.tcp_port: Optional[int] = None
        self._shutdown: Optional[asyncio.Event] = None
        # Single-flight table: cache key -> future resolving to the clean
        # (conclusive) result of the in-flight job, or None.
        self._inflight: Dict[Any, "asyncio.Future"] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start_pool(self) -> None:
        """Spawn the worker pool (idempotent; ``run`` calls this)."""
        if self.pool is None:
            self.pool = WorkerPool(
                size=self._workers,
                recycle_after=self._recycle_after,
                checkpoint_dir=self._checkpoint_dir,
            )

    def close(self) -> None:
        if self.pool is not None:
            self.pool.shutdown()
            self.pool = None
        self.cache.flush()
        self.cache.close()

    def run(self, stdio: bool = False, tcp: Optional[str] = None) -> int:
        """Run the daemon on exactly one transport; blocks until EOF (for
        stdio), a ``shutdown`` request, a drain signal, or
        KeyboardInterrupt.  Returns the process exit code: 0 for a clean
        stop, :data:`DRAIN_EXIT_CODE` when stopped by SIGTERM/SIGINT via
        the drain path."""
        if stdio == bool(tcp):
            raise ValueError("select exactly one transport: stdio or tcp")
        if tcp is not None:
            host, _, port_text = tcp.rpartition(":")
            if not host or not port_text.isdigit():
                raise ValueError(
                    f"--tcp expects HOST:PORT, got {tcp!r}"
                )
            coro = self._amain_tcp(host, int(port_text))
        else:
            coro = self._amain_stdio()
        try:
            asyncio.run(coro)
        except KeyboardInterrupt:
            # Signal handlers normally drain first; a KeyboardInterrupt
            # that still escapes (e.g. during loop startup) stops us too.
            self._drained_by_signal = True
        finally:
            self.close()
        return DRAIN_EXIT_CODE if self._drained_by_signal else 0

    def _install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT into the drain path (best-effort: not
        every loop/platform supports add_signal_handler)."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self._begin_drain)
            except (NotImplementedError, RuntimeError, ValueError):
                pass

    def _begin_drain(self) -> None:
        """First signal: shed new work, let in-flight finish, then stop.
        Second signal: stop now."""
        self._drained_by_signal = True
        if self.draining:
            self._log("drain: second signal, stopping immediately")
            if self._shutdown is not None:
                self._shutdown.set()
            return
        self.draining = True
        self._log(
            "drain: signal received, shedding new admissions "
            f"(up to {self.drain_timeout_s:g}s for in-flight jobs)"
        )
        asyncio.ensure_future(self._drain_then_stop())

    async def _drain_then_stop(self) -> None:
        deadline = time.monotonic() + self.drain_timeout_s
        while self.pool is not None and self.pool.pending() > 0:
            if time.monotonic() >= deadline:
                self._log(
                    f"drain: timeout with {self.pool.pending()} jobs "
                    "still in flight"
                )
                break
            await asyncio.sleep(0.05)
        self.cache.flush()
        if self._shutdown is not None:
            self._shutdown.set()

    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[repro-serve] {message}", file=sys.stderr, flush=True)

    # ------------------------------------------------------------------
    # Transports
    # ------------------------------------------------------------------

    async def _amain_stdio(self) -> None:
        self.start_pool()
        self._shutdown = asyncio.Event()
        self._install_signal_handlers()
        loop = asyncio.get_running_loop()
        write_lock = asyncio.Lock()
        tasks = set()
        self._log(f"serving on stdio, {self.pool.size} workers")

        async def respond(line: str) -> None:
            try:
                response = await self.handle_line(line)
            except DropConnection:
                return  # injected fault: swallow the response line
            if response is None:
                return
            async with write_lock:
                sys.stdout.write(response)
                sys.stdout.flush()

        # Stdin is read on a dedicated *daemon* thread, not the default
        # executor: asyncio.run()'s cleanup joins executor threads, so a
        # readline still blocked there after a ``shutdown`` op would hang
        # the process until the peer closed stdin.  A daemon thread is
        # simply abandoned at interpreter exit.
        line_q: "asyncio.Queue[str]" = asyncio.Queue()

        def _pump_stdin() -> None:
            while True:
                line = sys.stdin.readline()
                loop.call_soon_threadsafe(line_q.put_nowait, line)
                if not line:
                    return  # EOF ('' is the sentinel the loop below sees)

        threading.Thread(
            target=_pump_stdin, name="service-stdin-reader", daemon=True
        ).start()

        while not self._shutdown.is_set():
            read = asyncio.ensure_future(line_q.get())
            stop = asyncio.ensure_future(self._shutdown.wait())
            done, _ = await asyncio.wait(
                {read, stop}, return_when=asyncio.FIRST_COMPLETED
            )
            if read in done:
                stop.cancel()
                line = read.result()
                if not line:
                    break  # EOF
                if not line.strip():
                    continue
                task = asyncio.ensure_future(respond(line))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            else:
                # shutdown requested: stop consuming; the reader thread
                # stays parked in readline() but, being a daemon thread
                # outside the executor, never blocks loop cleanup or exit.
                read.cancel()
                break
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._log("stdio transport closed")

    async def _amain_tcp(self, host: str, port: int) -> None:
        self.start_pool()
        self._shutdown = asyncio.Event()
        self._install_signal_handlers()
        # The buffer limit is twice the protocol cap: lines between the
        # two get a structured "request too large" error from
        # decode_line; only lines the transport cannot even frame force
        # the connection closed.
        server = await asyncio.start_server(
            self._on_connection,
            host,
            port,
            limit=2 * protocol.MAX_REQUEST_BYTES,
        )
        if server.sockets:
            self.tcp_port = server.sockets[0].getsockname()[1]
        addrs = ", ".join(
            str(s.getsockname()) for s in server.sockets or ()
        )
        self._log(f"serving on {addrs}, {self.pool.size} workers")
        # Readiness marker on stdout: scripts wait for this line.
        print(
            f"repro-serve: listening on {host}:{self.tcp_port or port}",
            flush=True,
        )
        async with server:
            await self._shutdown.wait()
        self._log("tcp transport closed")

    async def _on_connection(self, reader, writer) -> None:
        write_lock = asyncio.Lock()
        tasks = set()

        async def respond(line: str) -> None:
            try:
                response = await self.handle_line(line)
            except DropConnection:
                # Injected fault: sever the connection unanswered, the
                # way a daemon crash mid-response would.
                try:
                    writer.transport.abort()
                except Exception:
                    pass
                return
            if response is None:
                return
            async with write_lock:
                try:
                    writer.write(response.encode("utf-8"))
                    await writer.drain()
                except (ConnectionError, RuntimeError):
                    pass  # client went away mid-response

        try:
            while True:
                try:
                    raw = await reader.readline()
                except ConnectionError:
                    break
                except asyncio.CancelledError:
                    break  # server shutting down with this connection open
                except ValueError:
                    # Line exceeded the stream buffer (2x the protocol
                    # cap): answer once, then close -- newline framing
                    # cannot be resynchronized mid-line.
                    self.protocol_errors += 1
                    err = protocol.encode(
                        protocol.error_response(
                            None,
                            "request line exceeds transport buffer "
                            f"({2 * protocol.MAX_REQUEST_BYTES} bytes); "
                            "closing connection",
                        )
                    )
                    async with write_lock:
                        try:
                            writer.write(err.encode("utf-8"))
                            await writer.drain()
                        except (ConnectionError, RuntimeError):
                            pass
                    break
                if not raw:
                    break
                line = raw.decode("utf-8", errors="replace")
                if not line.strip():
                    continue
                task = asyncio.ensure_future(respond(line))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            try:
                writer.close()
            except Exception:
                pass

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------

    async def handle_line(self, line: str) -> Optional[str]:
        """Decode one request line, dispatch it, encode the response.

        Raises :class:`~repro.robustness.faults.DropConnection` when a
        ``drop@service_response`` fault is installed -- the transport
        severs the connection unanswered (chaos testing of client
        retry).
        """
        try:
            req = protocol.decode_line(line)
        except protocol.ProtocolError as exc:
            self.protocol_errors += 1
            return protocol.encode(protocol.error_response(None, str(exc)))
        try:
            response = await self.handle_request(req)
        except Exception as exc:  # noqa: BLE001 - a bug, not a crash
            response = protocol.error_response(
                req.get("id"), f"internal error: {type(exc).__name__}: {exc}"
            )
        # Chaos hook: delay@service_response slows every answer,
        # drop@service_response propagates to the transport.
        fault_point("service_response")
        return protocol.encode(response)

    async def handle_request(self, req: Dict[str, Any]) -> Dict[str, Any]:
        """Dispatch one decoded request to its op handler (the transport-
        independent core; in-process tests call this directly)."""
        op = req["op"]
        request_id = req.get("id")
        if op == "ping":
            return {
                "id": request_id,
                "ok": True,
                "pong": True,
                "protocol": protocol.PROTOCOL_VERSION,
            }
        if op == "stats":
            return {"id": request_id, "ok": True, "stats": self.stats()}
        if op == "health":
            return self._op_health(request_id)
        if op == "ready":
            return self._op_ready(request_id)
        if op == "shutdown":
            if self._shutdown is not None:
                self._shutdown.set()
            return {"id": request_id, "ok": True, "bye": True}
        if op == "analyze":
            return self._op_analyze(req)
        return await self._op_verify(req)

    def stats(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "jobs_total": self.jobs_total,
            "jobs_shed": self.jobs_shed,
            "jobs_coalesced": self.jobs_coalesced,
            "protocol_errors": self.protocol_errors,
            "protocol": protocol.PROTOCOL_VERSION,
            "draining": int(self.draining),
        }
        out.update(self.cache.snapshot())
        if self.pool is not None:
            out.update(
                workers=self.pool.size,
                worker_recycles=self.pool.recycles,
                jobs_done=self.pool.jobs_done,
                jobs_pending=self.pool.pending(),
            )
        return out

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------

    def _op_health(self, request_id: Any) -> Dict[str, Any]:
        """Liveness probe: answered even mid-drain."""
        pool = self.pool
        health: Dict[str, Any] = {
            "status": "draining" if self.draining else "ok",
            "draining": self.draining,
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "queue_depth": pool.pending() if pool is not None else 0,
            "workers": pool.size if pool is not None else 0,
            "workers_alive": pool.alive() if pool is not None else 0,
        }
        health.update(self.cache.snapshot())
        return {"id": request_id, "ok": True, "health": health}

    def _op_ready(self, request_id: Any) -> Dict[str, Any]:
        """Admission probe: should new work be routed here?"""
        reason: Optional[str] = None
        if self.draining:
            reason = "draining"
        elif self.pool is None:
            reason = "worker pool not started"
        elif self.pool.alive() == 0:
            reason = "no live workers"
        return {
            "id": request_id,
            "ok": True,
            "ready": reason is None,
            "reason": reason,
        }

    def _op_analyze(self, req: Dict[str, Any]) -> Dict[str, Any]:
        request_id = req.get("id")
        source = req.get("source")
        if not isinstance(source, str):
            return protocol.error_response(
                request_id, "analyze needs a string 'source'"
            )
        from repro.analysis import analyze_program
        from repro.lang.lexer import LexError
        from repro.lang.parser import ParseError
        from repro.lang.sema import SemanticError

        try:
            report = analyze_program(
                source,
                unwind=int(req.get("unwind", 8)),
                width=int(req.get("width", 8)),
            )
        except (LexError, ParseError, SemanticError, ValueError) as exc:
            return protocol.error_response(
                request_id, f"{type(exc).__name__}: {exc}"
            )
        return {
            "id": request_id,
            "ok": True,
            "report": {
                "races": [w.to_dict() for w in report.warnings],
                "pairs_total": report.pairs_total,
                "pairs_ordered": report.pairs_ordered,
                "pairs_protected": report.pairs_protected,
                "pairs_racy": report.pairs_racy,
            },
        }

    async def _op_verify(self, req: Dict[str, Any]) -> Dict[str, Any]:
        request_id = req.get("id")
        source = req.get("source")
        if not isinstance(source, str):
            return protocol.error_response(
                request_id, "verify needs a string 'source'"
            )
        from repro.lang.lexer import LexError
        from repro.lang.parser import ParseError

        try:
            config = (
                VerifierConfig.from_dict(req["config"])
                if req.get("config")
                else VerifierConfig()
            )
        except ValueError as exc:
            return protocol.error_response(request_id, f"bad config: {exc}")
        language = req.get("language") or "mini"
        if language == "python":
            # Translate up front, on the event loop: the workers only
            # ever see mini-language source, so a program outside the
            # Python subset can never crash (or even reach) a worker.
            # Subset violations are a *structured* ERROR verdict with
            # the offending file:line:col, not a protocol error -- the
            # submitting program was understood, just not verifiable.
            from repro.lang.unparse import unparse
            from repro.pyfront import SubsetError, translate_source

            filename = req.get("filename") or "<python>"
            try:
                translation = translate_source(source, filename=str(filename))
            except SubsetError as exc:
                self.jobs_total += 1
                result = VerificationResult(
                    Verdict.ERROR,
                    config.name,
                    diagnostic=f"python subset: {exc}",
                    stats=normalize_stats({"reason": "subset-error"}),
                ).to_dict()
                self._annotate(result, cache_hit=False, queue_wait_s=0.0)
                return self._verify_response(
                    request_id, result, cache_hit=False
                )
            # From here on the job is indistinguishable from a mini-
            # language submission: the cache key is the canonical
            # *translated* form, so differently-formatted Python files
            # sharing a translation share cache entries (and entries
            # with CLI-side verify-py runs routed through the client).
            source = unparse(translation.program)
        elif language != "mini":
            return protocol.error_response(
                request_id, f"unknown language {language!r} "
                "(supported: 'mini', 'python')"
            )
        try:
            key = cache_key(source, config)
        except (LexError, ParseError) as exc:
            return protocol.error_response(
                request_id, f"{type(exc).__name__}: {exc}"
            )
        self.jobs_total += 1

        if self.draining:
            # New admissions are shed during a drain; in-flight jobs are
            # the only work the daemon will still finish.
            self.jobs_shed += 1
            return self._verify_response(
                request_id,
                self._shed_result(config, reason="draining"),
                cache_hit=False,
            )

        cached = self.cache.get(key)
        if cached is not None:
            self._annotate(cached, cache_hit=True, queue_wait_s=0.0)
            return self._verify_response(request_id, cached, cache_hit=True)

        deadline_s = req.get("deadline_s")
        if deadline_s is None:
            deadline_s = self.default_time_limit_s

        # Single-flight: an identical request is already computing -- await
        # its clean result instead of submitting a duplicate job.
        waiter = self._inflight.get(key)
        if waiter is not None:
            timeout = (
                None if deadline_s is None else deadline_s + _DEADLINE_GRACE_S
            )
            try:
                shared = await asyncio.wait_for(
                    asyncio.shield(waiter), timeout=timeout
                )
            except asyncio.TimeoutError:
                return self._verify_response(
                    request_id,
                    self._deadline_result(config, deadline_s),
                    cache_hit=False,
                )
            if shared is not None:
                self.jobs_coalesced += 1
                result = copy.deepcopy(shared)
                self._annotate(result, cache_hit=True, queue_wait_s=0.0)
                return self._verify_response(request_id, result, cache_hit=True)
            # The in-flight job ended without a shareable (conclusive)
            # verdict; fall through and compute this request independently.

        self.start_pool()
        if self.pool.pending() >= self.max_queue:
            self.jobs_shed += 1
            return self._verify_response(
                request_id,
                self._shed_result(config),
                cache_hit=False,
            )

        if deadline_s is not None:
            limit = config.time_limit_s
            limit = deadline_s if limit is None else min(limit, deadline_s)
            config = config.with_(time_limit_s=limit)

        waiter = asyncio.get_running_loop().create_future()
        self._inflight[key] = waiter
        clean: Optional[Dict] = None
        try:
            ckpt_token = (
                key_token(key) if self._checkpoint_dir is not None else None
            )
            _, fut, _ = self.pool.submit(
                source, config.to_dict(), ckpt_token=ckpt_token
            )
            timeout = (
                None if deadline_s is None else deadline_s + _DEADLINE_GRACE_S
            )
            try:
                payload = await asyncio.wait_for(
                    asyncio.wrap_future(fut), timeout=timeout
                )
            except asyncio.TimeoutError:
                return self._verify_response(
                    request_id,
                    self._deadline_result(config, deadline_s),
                    cache_hit=False,
                )
            except RuntimeError as exc:  # pool shut down under us
                return protocol.error_response(request_id, str(exc))

            if "input_error" in payload:
                return protocol.error_response(
                    request_id, payload["input_error"]
                )
            if "error" in payload:
                result = VerificationResult(
                    Verdict.ERROR,
                    config.name,
                    diagnostic=payload["error"],
                    stats=normalize_stats({}),
                ).to_dict()
            else:
                result = payload["result"]
                # Conclusive verdicts are cached *before* annotation so the
                # stored entry is a clean verdict, not this request's
                # timings; the same clean copy resolves the single-flight
                # waiter for any coalesced duplicates.
                if self.cache.put(key, result):
                    clean = copy.deepcopy(result)
            self._annotate(
                result,
                cache_hit=False,
                queue_wait_s=payload.get("queue_wait_s", 0.0),
            )
            return self._verify_response(request_id, result, cache_hit=False)
        finally:
            if self._inflight.get(key) is waiter:
                del self._inflight[key]
            if not waiter.done():
                waiter.set_result(clean)

    def _deadline_result(
        self, config: VerifierConfig, deadline_s: float
    ) -> Dict:
        """The structured UNKNOWN for a request whose deadline expired
        before its job (or the coalesced-onto job) answered."""
        result = VerificationResult(
            Verdict.UNKNOWN,
            config.name,
            wall_time_s=deadline_s or 0.0,
            diagnostic=(
                "service deadline exceeded: worker did not answer "
                f"within {deadline_s:g}s (+{_DEADLINE_GRACE_S:g}s grace)"
            ),
            stats=normalize_stats({"reason": "deadline"}),
        ).to_dict()
        self._annotate(result, cache_hit=False, queue_wait_s=0.0)
        return result

    def _annotate(
        self, result: Dict, cache_hit: bool, queue_wait_s: float
    ) -> None:
        """Stamp the service counters into a wire result's stats."""
        stats = result.setdefault("stats", {})
        stats["cache_hit"] = int(cache_hit)
        stats["queue_wait_s"] = queue_wait_s
        stats["worker_recycles"] = (
            self.pool.recycles if self.pool is not None else 0
        )

    def _shed_result(
        self, config: VerifierConfig, reason: str = "overloaded"
    ) -> Dict:
        """Admission control: the structured UNKNOWN for a shed job."""
        if reason == "draining":
            diagnostic = (
                "admission control: server is draining after a stop "
                "signal (reason=draining); retry against a live instance"
            )
        else:
            diagnostic = (
                f"admission control: {self.pool.pending()} jobs queued "
                f">= cap {self.max_queue} (reason={reason})"
            )
        result = VerificationResult(
            Verdict.UNKNOWN,
            config.name,
            diagnostic=diagnostic,
            stats=normalize_stats({"reason": reason}),
        ).to_dict()
        self._annotate(result, cache_hit=False, queue_wait_s=0.0)
        return result

    def _verify_response(
        self, request_id: Any, result: Dict, cache_hit: bool
    ) -> Dict[str, Any]:
        return {
            "id": request_id,
            "ok": True,
            "result": result,
            "cache_hit": cache_hit,
            "queue_wait_s": result.get("stats", {}).get("queue_wait_s", 0.0),
        }
