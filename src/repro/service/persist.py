"""Crash-safe persistence for the verdict cache.

A verdict earned by minutes of solving must survive daemon restarts, OOM
kills, and ``kill -9``.  This module gives :class:`~repro.service.cache
.VerdictCache` a disk representation designed around one rule: **a torn
or stale record is refused, never misread** -- recovery can lose the very
last (unacknowledged) append, but it can never resurrect a corrupted or
semantically outdated verdict.

Layout of a cache directory (``--cache-dir`` / ``REPRO_CACHE_DIR``)::

    <cache-dir>/
        journal.jsonl      append-only framed records, fsynced per append
        snapshot.json      periodic compaction of the journal
        checkpoints/       per-job resume checkpoints (repro.service
                           .checkpoints; journal/snapshot never reference
                           them)

**Framing.**  Each journal line is one JSON object::

    {"len": <bytes>, "sha": "<sha256 hex>", "rec": {...}}

``len``/``sha`` are computed over the canonical serialization of ``rec``
(``json.dumps(rec, sort_keys=True, separators=(",", ":"))``), so a
record is accepted only when it deserializes *and* re-serializes to
exactly the bytes that were hashed at write time.  A torn write -- the
process died mid-``write`` -- leaves a partial last line that fails JSON
parsing, or a frame whose length/hash does not match; either way the
record is discarded and counted, and replay continues with the next
line (a torn record in the middle, e.g. from a disk-full gap, does not
poison the rest of the journal).

**Record guards.**  Every entry record carries the cache schema version
(:data:`CACHE_SCHEMA_VERSION`), the wire schema version of the stored
result (:data:`repro.verify.result.SCHEMA_VERSION`), and the encoding
signature shape version
(:data:`repro.portfolio.sharing.SIGNATURE_VERSION`).  A mismatch on any
of the three means the entry was written by an incompatible build --
its key or payload could silently mean something different now -- so it
is refused on recovery and counted as stale, never served.

**Compaction.**  Every ``compact_every`` appends the store writes the
full live table to ``snapshot.json.tmp``, fsyncs, atomically renames it
over ``snapshot.json``, and only then truncates the journal.  A crash
at any point leaves a recoverable state: before the rename the old
snapshot + full journal are intact; after the rename but before the
truncate, replaying the journal over the new snapshot merely rewrites
identical entries.  The ``cache_compact`` fault checkpoint sits exactly
in that window so the chaos suite can prove it.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.portfolio.sharing import SIGNATURE_VERSION
from repro.robustness.faults import TornWrite, fault_point
from repro.verify.result import SCHEMA_VERSION as RESULT_SCHEMA_VERSION

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "JOURNAL_NAME",
    "SNAPSHOT_NAME",
    "CacheStore",
    "key_to_wire",
    "key_from_wire",
    "key_token",
]

#: Version of the on-disk cache format (journal framing + record shape +
#: snapshot shape).  Bump on any change; old files are refused, not
#: migrated -- a verdict cache is always re-earnable.
CACHE_SCHEMA_VERSION = 1

JOURNAL_NAME = "journal.jsonl"
SNAPSHOT_NAME = "snapshot.json"


def _canonical(rec: Dict[str, Any]) -> bytes:
    return json.dumps(rec, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def key_to_wire(key: Tuple) -> List:
    """A cache key (nested tuples) as JSON-ready nested lists."""

    def conv(value):
        if isinstance(value, tuple):
            return [conv(v) for v in value]
        return value

    return [conv(part) for part in key]


def key_from_wire(wire: List) -> Tuple:
    """The exact inverse of :func:`key_to_wire`."""

    def conv(value):
        if isinstance(value, list):
            return tuple(conv(v) for v in value)
        return value

    return tuple(conv(part) for part in wire)


def key_token(key: Tuple) -> str:
    """A short filesystem-safe token naming one cache key (used to key
    checkpoint files; collision-safe via sha256)."""
    return hashlib.sha256(_canonical({"key": key_to_wire(key)})).hexdigest()[
        :32
    ]


def _frame(rec: Dict[str, Any]) -> bytes:
    payload = _canonical(rec)
    header = {
        "len": len(payload),
        "sha": hashlib.sha256(payload).hexdigest(),
        "rec": rec,
    }
    return _canonical(header) + b"\n"


def _unframe(line: bytes) -> Optional[Dict[str, Any]]:
    """Decode one journal line; ``None`` for torn/corrupted frames."""
    try:
        obj = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(obj, dict):
        return None
    rec = obj.get("rec")
    if not isinstance(rec, dict):
        return None
    payload = _canonical(rec)
    if obj.get("len") != len(payload):
        return None
    if obj.get("sha") != hashlib.sha256(payload).hexdigest():
        return None
    return rec


class CacheStore:
    """The disk half of a persistent verdict cache.

    Thread-safe.  :meth:`recover` is called once on startup and returns
    the surviving entries in append order; :meth:`append` journals one
    entry (fsynced) and triggers compaction every ``compact_every``
    appends.  All I/O failures are contained: a cache that cannot
    persist degrades to in-memory behaviour and counts the failure,
    because losing durability must never lose a request.
    """

    def __init__(self, cache_dir: str, compact_every: int = 256) -> None:
        if compact_every < 1:
            raise ValueError(
                f"compact_every must be >= 1, got {compact_every}"
            )
        self.cache_dir = cache_dir
        self.compact_every = compact_every
        self.journal_path = os.path.join(cache_dir, JOURNAL_NAME)
        self.snapshot_path = os.path.join(cache_dir, SNAPSHOT_NAME)
        self._lock = threading.Lock()
        self._journal = None
        # True when the journal may end mid-line (a torn write, or a
        # pre-existing file that does not end in a newline): the next
        # append must resynchronize framing first.
        self._dirty_line = False
        self._appends_since_compact = 0
        # Counters surfaced through the cache's snapshot()/health stats.
        self.recovered_entries = 0
        self.discarded_records = 0
        self.stale_records = 0
        self.appends = 0
        self.torn_writes = 0
        self.compactions = 0
        self.compaction_failures = 0
        self.io_errors = 0
        os.makedirs(cache_dir, exist_ok=True)

    # ------------------------------------------------------------------
    # Records
    # ------------------------------------------------------------------

    def _entry_record(self, key: Tuple, result: Dict) -> Dict[str, Any]:
        return {
            "kind": "entry",
            "v": CACHE_SCHEMA_VERSION,
            "sigv": SIGNATURE_VERSION,
            "key": key_to_wire(key),
            "result": result,
        }

    def _accept_record(self, rec: Dict[str, Any]) -> Optional[Tuple]:
        """Validate one recovered record; the decoded key, or ``None``.

        Structure errors count as discarded (corruption), version
        mismatches as stale (written by an incompatible build).
        """
        if rec.get("kind") != "entry" or not isinstance(
            rec.get("key"), list
        ):
            self.discarded_records += 1
            return None
        result = rec.get("result")
        if not isinstance(result, dict):
            self.discarded_records += 1
            return None
        if (
            rec.get("v") != CACHE_SCHEMA_VERSION
            or rec.get("sigv") != SIGNATURE_VERSION
            or result.get("schema_version") != RESULT_SCHEMA_VERSION
        ):
            self.stale_records += 1
            return None
        return key_from_wire(rec["key"])

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def recover(self) -> List[Tuple[Tuple, Dict]]:
        """Load snapshot + journal; the surviving entries in write order
        (later journal entries override the snapshot on key collisions --
        the caller's insert loop gets that for free)."""
        entries: List[Tuple[Tuple, Dict]] = []
        entries.extend(self._recover_snapshot())
        entries.extend(self._recover_journal())
        self.recovered_entries = len(entries)
        return entries

    def _recover_snapshot(self) -> List[Tuple[Tuple, Dict]]:
        try:
            with open(self.snapshot_path, "rb") as f:
                obj = json.load(f)
        except FileNotFoundError:
            return []
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            # A torn snapshot can only come from a pre-rename crash of a
            # *previous* format (renames are atomic); refuse it whole.
            self.discarded_records += 1
            return []
        if (
            not isinstance(obj, dict)
            or obj.get("v") != CACHE_SCHEMA_VERSION
            or obj.get("sigv") != SIGNATURE_VERSION
        ):
            self.stale_records += 1
            return []
        out = []
        for item in obj.get("entries", ()):
            if not (isinstance(item, list) and len(item) == 2):
                self.discarded_records += 1
                continue
            rec = {
                "kind": "entry",
                "v": CACHE_SCHEMA_VERSION,
                "sigv": SIGNATURE_VERSION,
                "key": item[0],
                "result": item[1],
            }
            key = self._accept_record(rec)
            if key is not None:
                out.append((key, item[1]))
        return out

    def _recover_journal(self) -> List[Tuple[Tuple, Dict]]:
        out = []
        try:
            with open(self.journal_path, "rb") as f:
                lines = f.read().split(b"\n")
        except FileNotFoundError:
            return []
        except OSError:
            self.io_errors += 1
            return []
        for line in lines:
            if not line.strip():
                continue
            rec = _unframe(line)
            if rec is None:
                self.discarded_records += 1
                continue
            key = self._accept_record(rec)
            if key is not None:
                out.append((key, rec["result"]))
        return out

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def _open_journal(self):
        if self._journal is None or self._journal.closed:
            # A crash mid-append leaves the file ending mid-line; appends
            # from this (re)opened handle must not glue a fresh frame onto
            # that partial record and lose both.
            try:
                with open(self.journal_path, "rb") as f:
                    f.seek(0, os.SEEK_END)
                    if f.tell() > 0:
                        f.seek(-1, os.SEEK_END)
                        self._dirty_line = f.read(1) != b"\n"
            except FileNotFoundError:
                pass
            self._journal = open(self.journal_path, "ab")
        return self._journal

    def append(self, key: Tuple, result: Dict, cache=None) -> bool:
        """Journal one entry (fsynced); True when it hit the disk whole.

        The ``cache_write`` fault checkpoint fires before the write; a
        ``torn`` fault makes this write *half* the frame -- simulating a
        crash mid-append -- and report failure, which is exactly what a
        real crash would have acknowledged: nothing.  Framing then
        resynchronizes: the next append terminates the partial line
        before writing its own frame, so only the torn record is lost.
        """
        frame = _frame(self._entry_record(key, result))
        with self._lock:
            try:
                f = self._open_journal()
                if self._dirty_line:
                    f.write(b"\n")
                    self._dirty_line = False
                try:
                    fault_point("cache_write")
                except TornWrite:
                    f.write(frame[: max(1, len(frame) // 2)])
                    f.flush()
                    os.fsync(f.fileno())
                    self.torn_writes += 1
                    self._dirty_line = True
                    return False
                f.write(frame)
                f.flush()
                os.fsync(f.fileno())
            except OSError:
                self.io_errors += 1
                return False
            self.appends += 1
            self._appends_since_compact += 1
            should_compact = (
                self._appends_since_compact >= self.compact_every
            )
        if should_compact and cache is not None:
            self.compact(cache.entries_for_snapshot())
        return True

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def compact(self, entries: List[Tuple[Tuple, Dict]]) -> bool:
        """Write ``entries`` as the new snapshot, then rotate the journal.

        Crash-safe by construction (see module docstring); any failure
        leaves the previous snapshot+journal authoritative and counts as
        a ``compaction_failure``.
        """
        obj = {
            "v": CACHE_SCHEMA_VERSION,
            "sigv": SIGNATURE_VERSION,
            "entries": [
                [key_to_wire(key), result] for key, result in entries
            ],
        }
        with self._lock:
            tmp_path = None
            try:
                fd, tmp_path = tempfile.mkstemp(
                    prefix=SNAPSHOT_NAME + ".", dir=self.cache_dir
                )
                with os.fdopen(fd, "w") as f:
                    json.dump(obj, f, separators=(",", ":"))
                    f.flush()
                    os.fsync(f.fileno())
                os.replace(tmp_path, self.snapshot_path)
                tmp_path = None
                # Crash window under test: the snapshot is live but the
                # journal still holds every entry -- replay over the
                # snapshot is idempotent.
                fault_point("cache_compact")
                if self._journal is not None and not self._journal.closed:
                    self._journal.close()
                self._journal = None
                with open(self.journal_path, "wb") as f:
                    f.flush()
                    os.fsync(f.fileno())
                self._dirty_line = False
                self._appends_since_compact = 0
                self.compactions += 1
                return True
            except Exception:  # noqa: BLE001 - degrade, never lose a put
                self.compaction_failures += 1
                if tmp_path is not None:
                    try:
                        os.unlink(tmp_path)
                    except OSError:
                        pass
                return False

    # ------------------------------------------------------------------
    # Lifecycle / stats
    # ------------------------------------------------------------------

    def flush(self) -> None:
        """fsync the journal (drain calls this before exiting)."""
        with self._lock:
            if self._journal is not None and not self._journal.closed:
                try:
                    self._journal.flush()
                    os.fsync(self._journal.fileno())
                except OSError:
                    self.io_errors += 1

    def close(self) -> None:
        self.flush()
        with self._lock:
            if self._journal is not None and not self._journal.closed:
                try:
                    self._journal.close()
                except OSError:
                    self.io_errors += 1
            self._journal = None

    def counters(self) -> Dict[str, int]:
        return {
            "persist_recovered": self.recovered_entries,
            "persist_discarded": self.discarded_records,
            "persist_stale": self.stale_records,
            "persist_appends": self.appends,
            "persist_torn_writes": self.torn_writes,
            "persist_compactions": self.compactions,
            "persist_compaction_failures": self.compaction_failures,
            "persist_io_errors": self.io_errors,
        }
