"""Durable job checkpoints for the verification service.

One file per cache key under ``<cache-dir>/checkpoints/``, named by the
key's :func:`~repro.service.persist.key_token`.  Workers save a
checkpoint after every completed unwinding bound (atomic
write-tmp-then-rename, so a crash mid-save leaves the previous
checkpoint intact), load-and-validate it when the same job is
re-dispatched, and discard it once the job concludes -- a concluded
job's durable form is the verdict cache entry, not a checkpoint.

Validation on load is strict: the schema version must match
(:data:`repro.verify.checkpoint.CHECKPOINT_SCHEMA_VERSION`) and the
stored schedule must equal the re-dispatched config's schedule (the
token already pins program digest and encoding signature, the schedule
check additionally catches a config whose schedule knob changed while
hashing to the same signature-relevant shape).  Anything invalid or
unreadable is treated as "no checkpoint": resume is an optimization,
never a correctness dependency.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Optional, Sequence

from repro.verify.checkpoint import Checkpoint

__all__ = ["CHECKPOINT_DIR_NAME", "CheckpointStore"]

CHECKPOINT_DIR_NAME = "checkpoints"


class CheckpointStore:
    """Filesystem store of per-job resume checkpoints (see module
    docstring).  Safe for concurrent use by several worker processes:
    each key maps to its own file, saves are atomic renames, and
    concurrent saves of the same key last-writer-wins (both writers hold
    a correct checkpoint -- UNSAT proofs do not conflict)."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def path(self, token: str) -> str:
        return os.path.join(self.root, f"{token}.ckpt.json")

    def save(self, token: str, checkpoint: Checkpoint) -> bool:
        """Persist ``checkpoint`` for ``token``; False on I/O trouble
        (contained -- a failed save only costs future resumability)."""
        tmp_path = None
        try:
            fd, tmp_path = tempfile.mkstemp(
                prefix=f"{token}.", suffix=".tmp", dir=self.root
            )
            with os.fdopen(fd, "w") as f:
                json.dump(checkpoint.to_dict(), f, separators=(",", ":"))
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp_path, self.path(token))
            return True
        except OSError:
            if tmp_path is not None:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
            return False

    def load(
        self, token: str, schedule: Sequence[int]
    ) -> Optional[Checkpoint]:
        """The stored checkpoint for ``token``, validated against the
        job's ``schedule``; ``None`` when absent, unreadable, stale, or
        mismatched."""
        try:
            with open(self.path(token)) as f:
                data = json.load(f)
            checkpoint = Checkpoint.from_dict(data)
        except (OSError, ValueError, KeyError, TypeError):
            return None
        if checkpoint.schedule != tuple(schedule):
            return None
        if not checkpoint.completed or not checkpoint.remaining():
            return None
        return checkpoint

    def discard(self, token: str) -> None:
        try:
            os.unlink(self.path(token))
        except OSError:
            pass

    def count(self) -> int:
        try:
            return sum(
                1
                for name in os.listdir(self.root)
                if name.endswith(".ckpt.json")
            )
        except OSError:
            return 0
