"""The content-addressed verdict cache.

Two requests hit the same cache entry iff

* their programs have the same **canonical form** -- the parse->unparse
  normal form already exercised by the round-trip tests: whitespace,
  comments, and the unparser's global-declaration normalization all wash
  out, so textually different spellings of the same program share an
  entry; and
* their configs have the same **semantic signature** -- for SMT-engine
  configs exactly :func:`repro.portfolio.sharing.encoding_signature`
  (theory, FR ablation, prune level, unwind, width, memory model,
  schedule), so formula-shaping knobs split entries while search-only
  knobs (cycle detector, unit-edge propagation, conflict caps, VSIDS
  parameters) share them; for non-SMT engines the engine name plus its
  verdict-shaping bounds.

Only conclusive verdicts are stored: a SAFE/UNSAFE verdict at a given
(program, signature) is deterministic across every sound engine and every
search-knob setting, which is what makes sharing entries across search
configurations sound.  UNKNOWN depends on the budget of the run that
produced it and ERROR on a transient crash, so :meth:`VerdictCache.put`
refuses both -- the cache cannot be poisoned by an exhausted or crashed
run.  :meth:`VerdictCache.put` also refuses verdicts produced by a
*fallback* attempt: the cache key signs the request's primary config, but
a fallback engine answers under its own signature -- e.g. a lazy-cseq
SAFE only means "no violation within the round bound" and must never be
served to future requests keyed on a full SMT encoding.

With a ``cache_dir`` the cache is **persistent**: every put is journaled
to a crash-safe append-only log and recovered on the next startup (see
:mod:`repro.service.persist` for the framing, guard, and compaction
story).  Persistence is strictly additive -- the in-memory behaviour,
the key discipline, and the conclusive-only rule are identical either
way, and a cache that cannot reach its disk degrades to in-memory
operation instead of failing requests.
"""

from __future__ import annotations

import copy
import hashlib
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple, Union

from repro.lang import ast, parse
from repro.lang.unparse import unparse
from repro.portfolio.sharing import encoding_signature
from repro.verify.config import VerifierConfig
from repro.verify.result import Verdict

__all__ = [
    "canonical_source",
    "config_signature",
    "cache_key",
    "key_token",
    "VerdictCache",
]

#: Verdicts eligible for caching.
_CACHEABLE = (Verdict.SAFE, Verdict.UNSAFE)

CacheKey = Tuple[str, Tuple]


def _verdict_from_primary(result: Dict) -> bool:
    """Did the result's verdict come from the request's own config?

    With a fallback chain, ``attempts`` records every link in order; the
    primary is always first and :func:`repro.verify.verify` stops at the
    first conclusive attempt.  So the verdict belongs to the primary iff
    no chain ran at all, or the first attempt is the conclusive one.  A
    verdict from any later link was produced under the *fallback's*
    signature, which is not the signature in the cache key.
    """
    attempts = result.get("attempts") or ()
    if not attempts:
        return True
    return attempts[0].get("status") == "conclusive"


def canonical_source(program: Union[str, ast.Program]) -> str:
    """The parse->unparse normal form of ``program``.

    Parse errors raise (callers decide how to surface input errors).
    """
    if isinstance(program, str):
        program = parse(program)
    return unparse(program)


def config_signature(config: VerifierConfig) -> Tuple:
    """The config part of the cache key.

    SMT configs reuse the portfolio sharing signature verbatim.  Non-SMT
    engines have no CNF to sign; their verdict is shaped by the engine
    itself and its exploration bounds, so those are the key.
    """
    sig = encoding_signature(config)
    if sig is not None:
        return sig
    return (
        "engine",
        config.engine,
        config.unwind,
        config.width,
        config.memory_model,
        config.rounds,
    )


def cache_key(
    program: Union[str, ast.Program], config: VerifierConfig
) -> CacheKey:
    """Content address of one verification job: (program digest, config
    signature)."""
    canonical = canonical_source(program)
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    return (digest, config_signature(config))


def key_token(key: CacheKey) -> str:
    """A short filesystem-safe token naming one cache key (checkpoint
    files are keyed by it)."""
    from repro.service.persist import key_token as _key_token

    return _key_token(key)


class VerdictCache:
    """Bounded LRU map from :func:`cache_key` to wire-format results.

    Thread-safe; entries are deep-copied on both :meth:`put` and
    :meth:`get`, so callers can annotate returned dicts (``cache_hit``,
    queue timings) without corrupting the stored verdict.

    With ``cache_dir`` set, entries additionally live in a crash-safe
    journal under that directory and survive restarts: construction
    replays the journal (refusing torn and stale records), every
    successful :meth:`put` appends (fsynced), and the journal is
    periodically compacted into a snapshot.  See
    :mod:`repro.service.persist`.
    """

    def __init__(
        self,
        max_entries: int = 1024,
        cache_dir: Optional[str] = None,
        compact_every: int = 256,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[CacheKey, Dict]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.store = None
        if cache_dir:
            from repro.service.persist import CacheStore

            self.store = CacheStore(cache_dir, compact_every=compact_every)
            for key, result in self.store.recover():
                if result.get("verdict") not in _CACHEABLE:
                    # Belt and braces: only conclusive verdicts are ever
                    # journaled, but a hand-edited journal must not
                    # poison the cache either.
                    self.store.discarded_records += 1
                    continue
                with self._lock:
                    self._entries[key] = result
                    self._entries.move_to_end(key)
                    while len(self._entries) > self.max_entries:
                        self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: CacheKey) -> Optional[Dict]:
        """The cached wire result for ``key`` (a private copy), or None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return copy.deepcopy(entry)

    def put(self, key: CacheKey, result: Dict) -> bool:
        """Store a wire-format result; returns whether it was cached.

        Inconclusive results are rejected: an UNKNOWN reflects the budget
        of the run that produced it and an ERROR a (possibly transient)
        crash -- serving either to future identical requests would poison
        the cache with non-verdicts.  Fallback verdicts are rejected too:
        ``key`` signs the primary config, but a verdict from a fallback
        attempt was produced under the fallback engine's own (different)
        signature, so storing it would let e.g. a round-bounded baseline
        SAFE answer for a full SMT solve.
        """
        if result.get("verdict") not in _CACHEABLE:
            return False
        if not _verdict_from_primary(result):
            return False
        with self._lock:
            self._entries[key] = copy.deepcopy(result)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
        if self.store is not None:
            # Outside the entry lock: an fsync must not stall readers.
            self.store.append(key, result, cache=self)
        return True

    def entries_for_snapshot(self) -> List[Tuple[CacheKey, Dict]]:
        """A point-in-time copy of the live table, LRU order preserved
        (compaction input)."""
        with self._lock:
            return [
                (key, copy.deepcopy(result))
                for key, result in self._entries.items()
            ]

    def compact(self) -> bool:
        """Force a journal compaction now (no-op without persistence)."""
        if self.store is None:
            return False
        return self.store.compact(self.entries_for_snapshot())

    def flush(self) -> None:
        """fsync the journal (drain path; no-op without persistence)."""
        if self.store is not None:
            self.store.flush()

    def close(self) -> None:
        if self.store is not None:
            self.store.close()

    def snapshot(self) -> Dict[str, int]:
        """Counters for the server's ``stats`` op."""
        with self._lock:
            out = {
                "cache_entries": len(self._entries),
                "cache_hits": self.hits,
                "cache_misses": self.misses,
                "cache_evictions": self.evictions,
                "cache_persistent": int(self.store is not None),
            }
        if self.store is not None:
            out.update(self.store.counters())
        return out
