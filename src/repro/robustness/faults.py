"""Deterministic fault injection at named pipeline checkpoints.

The robustness test suite needs to *prove* every degradation path: engine
crashes, hangs, memory spikes, and workers killed mid-run.  This module
injects those faults deterministically at the same named checkpoints the
budget layer already visits (:func:`repro.robustness.checkpoint`), driven
either by the ``REPRO_FAULTS`` environment variable (which propagates into
portfolio worker processes) or programmatically via
:func:`install_faults`.

Spec syntax -- a comma-separated list of ``action@checkpoint[:arg]``::

    REPRO_FAULTS="crash@encode"            # raise FaultInjected at encode
    REPRO_FAULTS="delay@solve:0.5"         # sleep 0.5s at each solve check
    REPRO_FAULTS="memspike@frontend:64"    # allocate+hold 64MB of ballast
    REPRO_FAULTS="kill@portfolio_worker"   # SIGKILL the current process
    REPRO_FAULTS="sigstop@portfolio_worker"   # freeze (for hang detection)
    REPRO_FAULTS="ignoreterm@portfolio_worker" # ignore SIGTERM (escalation)
    REPRO_FAULTS="oom@engine"              # raise MemoryError
    REPRO_FAULTS="crash@encode,delay@solve:0.1"   # multiple faults
    REPRO_FAULTS="kill@service_worker"     # kill a service worker mid-job
    REPRO_FAULTS="drop@service_response"   # close the connection, no answer
    REPRO_FAULTS="delay@service_response:0.2"  # slow every response
    REPRO_FAULTS="torn@cache_write"        # write half a journal record
    REPRO_FAULTS="crash@cache_compact"     # die between snapshot and rotate

Checkpoint names in the shipped pipeline: ``frontend``, ``encode``,
``theory``, ``solve``, ``engine``, ``explore``, ``portfolio_worker``.
The verification service adds its own daemon-side checkpoints:
``service_worker`` (a pool worker, right after picking a job up),
``service_response`` (the server, right before writing a response line),
``cache_write`` (the persistent verdict cache, before appending a journal
record) and ``cache_compact`` (between writing the compaction snapshot
and rotating the journal).  Faults fire on *every* hit of their
checkpoint (checkpoints in hot loops are throttled by the caller), so
behaviour is reproducible run-to-run.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Dict, List, Optional, Tuple

__all__ = [
    "ENV_VAR",
    "FaultInjected",
    "DropConnection",
    "TornWrite",
    "parse_faults",
    "install_faults",
    "clear_faults",
    "active_spec",
    "fault_point",
]

ENV_VAR = "REPRO_FAULTS"

#: Recognised fault actions (validated by :func:`parse_faults`).
_ACTIONS = (
    "crash",
    "raise",
    "delay",
    "hang",
    "memspike",
    "oom",
    "kill",
    "sigstop",
    "ignoreterm",
    "drop",
    "torn",
)


class FaultInjected(RuntimeError):
    """Raised by ``crash``/``raise`` faults; contained by the crash guard
    like any other engine exception."""

    def __init__(self, checkpoint: str) -> None:
        self.checkpoint = checkpoint
        super().__init__(f"injected fault at checkpoint {checkpoint!r}")


class DropConnection(FaultInjected):
    """Raised by ``drop`` faults: the service transport interprets it as
    "sever this connection without answering" (chaos testing of client
    reconnect/retry paths)."""


class TornWrite(FaultInjected):
    """Raised by ``torn`` faults: the persistent cache interprets it as
    "write a partial journal record, as if the process died mid-write"
    (chaos testing of crash recovery)."""


# Programmatic override (takes precedence over the environment variable).
_installed: Optional[str] = None
# Parse cache: spec string -> checkpoint -> [(action, arg), ...].
_cache: Dict[str, Dict[str, List[Tuple[str, Optional[str]]]]] = {}
# Ballast held by memspike faults (released by clear_faults()).
_ballast: List[bytearray] = []


def parse_faults(spec: str) -> Dict[str, List[Tuple[str, Optional[str]]]]:
    """Parse a fault spec into ``{checkpoint: [(action, arg), ...]}``.

    Raises :class:`ValueError` on malformed entries or unknown actions.
    """
    table: Dict[str, List[Tuple[str, Optional[str]]]] = {}
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        if "@" not in entry:
            raise ValueError(
                f"malformed fault {entry!r}: expected action@checkpoint[:arg]"
            )
        action, _, rest = entry.partition("@")
        checkpoint, _, arg = rest.partition(":")
        action = action.strip()
        checkpoint = checkpoint.strip()
        if action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {action!r}; known: {', '.join(_ACTIONS)}"
            )
        if not checkpoint:
            raise ValueError(f"malformed fault {entry!r}: empty checkpoint")
        table.setdefault(checkpoint, []).append((action, arg or None))
    return table


def install_faults(spec: Optional[str]) -> None:
    """Install a fault spec for this process (overrides ``REPRO_FAULTS``).

    ``install_faults(None)`` removes the override (the environment variable,
    if set, applies again); use :func:`clear_faults` for a full reset.
    """
    global _installed
    if spec is not None:
        parse_faults(spec)  # validate eagerly
    _installed = spec


def clear_faults() -> None:
    """Remove any programmatic spec and release memspike ballast."""
    global _installed
    _installed = None
    _ballast.clear()


def active_spec() -> Optional[str]:
    """The fault spec in effect (programmatic override, else environment)."""
    if _installed is not None:
        return _installed
    return os.environ.get(ENV_VAR) or None


def fault_point(checkpoint: str) -> None:
    """Fire any faults registered for ``checkpoint``.  No-op (one dict
    lookup) when no spec is active."""
    spec = _installed if _installed is not None else os.environ.get(ENV_VAR)
    if not spec:
        return
    table = _cache.get(spec)
    if table is None:
        try:
            table = parse_faults(spec)
        except ValueError:
            table = {}
        _cache[spec] = table
    actions = table.get(checkpoint)
    if not actions:
        return
    for action, arg in actions:
        _fire(action, arg, checkpoint)


def _fire(action: str, arg: Optional[str], checkpoint: str) -> None:
    if action in ("crash", "raise"):
        raise FaultInjected(checkpoint)
    if action == "drop":
        raise DropConnection(checkpoint)
    if action == "torn":
        raise TornWrite(checkpoint)
    if action in ("delay", "hang"):
        time.sleep(float(arg) if arg else 1.0)
    elif action == "memspike":
        mb = float(arg) if arg else 32.0
        _ballast.append(bytearray(int(mb * 1e6)))
    elif action == "oom":
        raise MemoryError(f"injected memory exhaustion at {checkpoint!r}")
    elif action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif action == "sigstop":
        os.kill(os.getpid(), signal.SIGSTOP)
    elif action == "ignoreterm":
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
