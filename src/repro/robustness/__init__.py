"""Resource governance: budgets, crash containment, fallbacks, faults.

The robustness layer makes budget exhaustion, hangs, and engine crashes
*normal outcomes* of :func:`repro.verify.verify` instead of exceptions:

* :mod:`repro.robustness.budget` -- a :class:`Budget` (wall-clock
  deadline, conflict cap, peak-memory cap, event-count cap) created once
  per run and cooperatively checked at checkpoints in every layer;
* :mod:`repro.robustness.guard` -- crash containment turning engine
  exceptions into ``ERROR``-status results with captured diagnostics;
* :mod:`repro.robustness.fallback` -- configurable fallback chains
  (``VerifierConfig.fallbacks``) retrying cheaper engines on crash or
  budget exhaustion;
* :mod:`repro.robustness.faults` -- a deterministic fault-injection
  harness (``REPRO_FAULTS``) the robustness test suite uses to prove
  every degradation path.

:func:`checkpoint` is the single hook the pipeline layers call: it fires
injected faults, then checks the thread's active budget.  With no faults
installed and no active budget it costs two lookups, so throttled
hot-loop use is fine.
"""

from __future__ import annotations

from repro.robustness.budget import (
    Budget,
    BudgetExceeded,
    active_budget,
    effective_time_limit,
    get_active,
)
from repro.robustness.faults import FaultInjected, fault_point

__all__ = [
    "Budget",
    "BudgetExceeded",
    "FaultInjected",
    "active_budget",
    "checkpoint",
    "effective_time_limit",
    "fault_point",
]


def checkpoint(phase: str, conflicts: int = 0, events: int = 0) -> None:
    """Cooperative robustness checkpoint for pipeline phase ``phase``.

    Fires any injected faults registered at ``phase``, then checks the
    active budget's deadline and memory cap, charging ``conflicts`` /
    ``events`` against their cumulative caps when given.  Raises
    :class:`BudgetExceeded` (or a fault's effect) on violation; a no-op
    when no faults and no budget are active.
    """
    fault_point(phase)
    budget = get_active()
    if budget is None:
        return
    budget.check(phase)
    if conflicts:
        budget.charge_conflicts(conflicts, phase)
    if events:
        budget.charge_events(events, phase)
