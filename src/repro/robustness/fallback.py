"""Fallback chains: degrade to cheaper engines instead of giving up.

``VerifierConfig.fallbacks=("zord-tarjan", "dartagnan")`` instructs
:func:`repro.verify.verify` to retry with the named presets, in order,
whenever an attempt crashes (``ERROR``) or exhausts its budget
(``UNKNOWN``) -- e.g. an ``smt/ord`` crash retried with the ``tarjan``
detector, then degraded to the ``closure`` baseline.  All attempts share
one :class:`~repro.robustness.budget.Budget` (one wall-clock deadline for
the whole chain), and every attempt is recorded on the final result's
``attempts`` list and in telemetry.

Fallback configs are instantiated from the preset table with the primary
config's generic bounds (unwind, width, rounds, memory model, budget
caps) but none of its engine-specific knobs; a preset that cannot accept
those bounds (e.g. an explicit-state engine under a weak memory model) is
recorded as a skipped attempt rather than aborting the chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["Attempt", "resolve_chain"]


@dataclass
class Attempt:
    """One link of a fallback chain, as recorded on the final result."""

    config_name: str
    engine: str
    #: ``"conclusive"`` / ``"unknown"`` / ``"error"`` / ``"skipped"``.
    status: str
    verdict: Optional[str] = None
    wall_time_s: float = 0.0
    #: Diagnostic or budget-exhaustion summary for non-conclusive attempts.
    reason: Optional[str] = None

    def as_dict(self) -> Dict:
        return {
            "config_name": self.config_name,
            "engine": self.engine,
            "status": self.status,
            "verdict": self.verdict,
            "wall_time_s": round(self.wall_time_s, 6),
            "reason": self.reason,
        }


def resolve_chain(config) -> List[Tuple[Optional[object], Optional[Attempt]]]:
    """Expand ``config`` into its attempt chain.

    Returns a list of ``(config, None)`` entries for runnable attempts and
    ``(None, Attempt)`` entries for fallbacks whose construction failed
    (recorded as skipped).  The primary config is always first.
    """
    chain: List[Tuple[Optional[object], Optional[Attempt]]] = [(config, None)]
    fallbacks = getattr(config, "fallbacks", ()) or ()
    if not fallbacks:
        return chain
    from repro.verify.config import PRESETS

    bounds = dict(
        unwind=config.unwind,
        width=config.width,
        rounds=config.rounds,
        time_limit_s=config.time_limit_s,
        max_conflicts=config.max_conflicts,
        memory_limit_mb=config.memory_limit_mb,
        max_events=config.max_events,
    )
    for name in fallbacks:
        try:
            factory = PRESETS[name]
        except KeyError:
            chain.append(
                (
                    None,
                    Attempt(
                        name, "?", "skipped",
                        reason=f"unknown fallback preset {name!r}",
                    ),
                )
            )
            continue
        try:
            fb = factory(memory_model=config.memory_model, **bounds)
        except ValueError as exc:
            # E.g. a weak-memory primary falling back to an SC-only engine:
            # changing the memory model would change the verified property,
            # so record the preset as skipped instead of silently degrading.
            chain.append(
                (None, Attempt(name, "?", "skipped", reason=str(exc)))
            )
            continue
        chain.append((fb, None))
    return chain
