"""Unified resource budgets for a verification run.

A :class:`Budget` is created once per :func:`repro.verify.verify` call and
cooperatively checked at checkpoints in every layer of the pipeline: the
frontend (parse/unroll/SSA), the encoder, the T_ord theory solver (ICD and
Tarjan detectors), the SAT core, and the baseline/SMC engines.  A budget
bundles four independent limits:

* **wall-clock deadline** (``time_limit_s``) -- measured from budget
  creation, so fallback attempts share one deadline instead of each
  getting a fresh allowance;
* **conflict cap** (``max_conflicts``) -- cumulative CDCL conflicts
  charged by the SAT core (and the analogous exploration counters of the
  explicit/sequentialized engines);
* **peak-memory cap** (``memory_limit_mb``) -- resident-set growth since
  budget creation, sampled from ``/proc/self/statm`` where available and
  falling back to ``resource.getrusage`` high-water marks;
* **event-count cap** (``max_events``) -- size of the event graph the
  frontend produced, checked before the encoder commits to a quadratic
  (or, for the closure baseline, cubic) encoding.

Exceeding any limit raises :class:`BudgetExceeded`, which carries the
pipeline phase, the limit that tripped, and any partial statistics the
raising layer attached; :func:`repro.verify.verify` converts it into a
structured ``UNKNOWN`` result instead of letting it escape.

The budget of the run in progress is exposed through a thread-local
(:func:`set_active` / :func:`get_active`), so deep layers (the SAT core,
the cycle detectors) can consult it without threading a parameter through
every call signature.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, Optional

__all__ = [
    "Budget",
    "BudgetExceeded",
    "get_active",
    "set_active",
    "clear_active",
    "active_budget",
    "effective_time_limit",
]


class BudgetExceeded(Exception):
    """A cooperative budget check failed.

    Attributes:
        limit: which limit tripped: ``"time"``, ``"conflicts"``,
            ``"memory"`` or ``"events"``.
        phase: pipeline phase at the failing checkpoint (``"frontend"``,
            ``"analysis"``, ``"encode"``, ``"theory"``, ``"solve"``,
            ``"engine"``, ...).
        used: the measured value at the check.
        cap: the configured cap.
        partial_stats: counters gathered before exhaustion (layers that
            track statistics attach them while the exception unwinds).
    """

    def __init__(
        self,
        limit: str,
        phase: str,
        used: float,
        cap: float,
        partial_stats: Optional[Dict] = None,
    ) -> None:
        self.limit = limit
        self.phase = phase
        self.used = used
        self.cap = cap
        self.partial_stats: Dict = dict(partial_stats or {})
        super().__init__(
            f"{limit} budget exhausted in phase {phase!r} "
            f"(used {used:g}, cap {cap:g})"
        )


def _rss_mb() -> Optional[float]:
    """Current resident set size in MB (None when unavailable)."""
    try:
        with open("/proc/self/statm", "rb") as f:
            pages = int(f.read().split()[1])
        return pages * (os.sysconf("SC_PAGE_SIZE") / 1e6)
    except (OSError, ValueError, IndexError, AttributeError):
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KB, macOS reports bytes.
        import sys

        return peak / 1e6 if sys.platform == "darwin" else peak / 1e3
    except (ImportError, ValueError):
        return None


class Budget:
    """Mutable budget state shared by every layer of one verification run."""

    __slots__ = (
        "time_limit_s",
        "max_conflicts",
        "memory_limit_mb",
        "max_events",
        "started_at",
        "conflicts",
        "events",
        "_rss0_mb",
    )

    def __init__(
        self,
        time_limit_s: Optional[float] = None,
        max_conflicts: Optional[int] = None,
        memory_limit_mb: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        self.time_limit_s = time_limit_s
        self.max_conflicts = max_conflicts
        self.memory_limit_mb = memory_limit_mb
        self.max_events = max_events
        self.started_at = time.monotonic()
        self.conflicts = 0
        self.events = 0
        self._rss0_mb = _rss_mb() if memory_limit_mb is not None else None

    @classmethod
    def from_config(cls, config) -> "Budget":
        """Build the run budget from a :class:`VerifierConfig`."""
        return cls(
            time_limit_s=config.time_limit_s,
            max_conflicts=config.max_conflicts,
            memory_limit_mb=getattr(config, "memory_limit_mb", None),
            max_events=getattr(config, "max_events", None),
        )

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def elapsed_s(self) -> float:
        return time.monotonic() - self.started_at

    def remaining_s(self) -> Optional[float]:
        """Seconds left on the deadline (None = unbounded, >= 0)."""
        if self.time_limit_s is None:
            return None
        return max(0.0, self.time_limit_s - self.elapsed_s())

    def memory_used_mb(self) -> Optional[float]:
        """RSS growth (MB) since the budget was created."""
        if self._rss0_mb is None:
            return None
        now = _rss_mb()
        if now is None:
            return None
        return max(0.0, now - self._rss0_mb)

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------

    def check(self, phase: str) -> None:
        """Raise :class:`BudgetExceeded` when the deadline or the memory
        cap is exceeded.  Cheap enough for throttled hot-loop use."""
        if self.time_limit_s is not None:
            elapsed = time.monotonic() - self.started_at
            if elapsed > self.time_limit_s:
                raise BudgetExceeded("time", phase, elapsed, self.time_limit_s)
        if self.memory_limit_mb is not None:
            used = self.memory_used_mb()
            if used is not None and used > self.memory_limit_mb:
                raise BudgetExceeded("memory", phase, used, self.memory_limit_mb)

    def charge_conflicts(self, n: int, phase: str) -> None:
        """Accumulate ``n`` conflicts; raise when over the cumulative cap."""
        self.conflicts += n
        if self.max_conflicts is not None and self.conflicts > self.max_conflicts:
            raise BudgetExceeded(
                "conflicts", phase, self.conflicts, self.max_conflicts
            )

    def charge_events(self, n: int, phase: str) -> None:
        """Accumulate ``n`` event-graph nodes; raise when over the cap."""
        self.events += n
        if self.max_events is not None and self.events > self.max_events:
            raise BudgetExceeded("events", phase, self.events, self.max_events)

    def snapshot(self) -> Dict[str, float]:
        """Budget counters for inclusion in result ``stats``."""
        out: Dict[str, float] = {
            "budget_elapsed_s": round(self.elapsed_s(), 6),
            "budget_conflicts": self.conflicts,
            "budget_events": self.events,
        }
        mem = self.memory_used_mb()
        if mem is not None:
            out["budget_memory_mb"] = round(mem, 3)
        return out


# ----------------------------------------------------------------------
# Thread-local active budget
# ----------------------------------------------------------------------

_tls = threading.local()


def set_active(budget: Optional[Budget]) -> None:
    _tls.budget = budget


def get_active() -> Optional[Budget]:
    return getattr(_tls, "budget", None)


def clear_active() -> None:
    _tls.budget = None


class active_budget:
    """Context manager installing ``budget`` as the thread's active budget."""

    def __init__(self, budget: Optional[Budget]) -> None:
        self._budget = budget
        self._prev: Optional[Budget] = None

    def __enter__(self) -> Optional[Budget]:
        self._prev = get_active()
        set_active(self._budget)
        return self._budget

    def __exit__(self, *exc) -> None:
        set_active(self._prev)


def effective_time_limit(config_limit_s: Optional[float]) -> Optional[float]:
    """The tighter of the engine's own ``time_limit_s`` and the active
    budget's remaining deadline.  Engines use this so fallback attempts
    share one wall clock instead of restarting it."""
    budget = get_active()
    remaining = budget.remaining_s() if budget is not None else None
    if remaining is None:
        return config_limit_s
    if config_limit_s is None:
        return remaining
    return min(config_limit_s, remaining)
