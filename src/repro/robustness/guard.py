"""Crash containment: engine exceptions become structured results.

DPLL(T) on ordering consistency has exponential worst cases, and the
baseline engines have their own failure modes (cubic closure encodings,
state explosion, deep graphs).  A production verifier therefore treats
budget exhaustion and engine crashes as *normal outcomes*:
:func:`run_guarded` executes an engine runner and guarantees a
:class:`~repro.verify.result.VerificationResult` comes back --

* :class:`~repro.robustness.budget.BudgetExceeded` becomes a structured
  ``UNKNOWN`` carrying the phase, the limit that tripped, and any partial
  statistics the raising layer attached;
* ``MemoryError`` (allocation failure) becomes ``UNKNOWN`` with the
  memory limit recorded -- running out of memory is budget exhaustion,
  not a bug;
* any other exception (including ``RecursionError``) becomes an
  ``ERROR``-status result with a compact captured diagnostic -- never a
  raw traceback to the user;
* ``KeyboardInterrupt`` / ``SystemExit`` always propagate.
"""

from __future__ import annotations

import traceback
from typing import Optional

from repro.robustness.budget import Budget, BudgetExceeded

# NOTE: repro.verify.result is imported inside the functions below --
# repro.verify.verifier imports this module at load time, so a top-level
# import here would create an order-dependent cycle.

__all__ = ["describe_exception", "run_guarded"]

#: Cap on diagnostic length (a diagnostic is a summary, not a dump).
_MAX_DIAGNOSTIC_CHARS = 600


def describe_exception(exc: BaseException) -> str:
    """A compact single-paragraph diagnostic: exception type, message, and
    the innermost in-repo source location."""
    parts = [f"{type(exc).__name__}: {exc}"]
    tb = exc.__traceback__
    frames = traceback.extract_tb(tb) if tb is not None else []
    if frames:
        last = frames[-1]
        parts.append(f"(at {last.filename}:{last.lineno} in {last.name})")
    text = " ".join(parts)
    if len(text) > _MAX_DIAGNOSTIC_CHARS:
        text = text[: _MAX_DIAGNOSTIC_CHARS - 3] + "..."
    return text


def _budget_result(config_name: str, exc: BudgetExceeded, budget: Optional[Budget]):
    from repro.verify.result import Verdict, VerificationResult

    stats = dict(exc.partial_stats)
    stats["budget_limit"] = exc.limit
    stats["budget_phase"] = exc.phase
    stats["budget_used"] = exc.used
    stats["budget_cap"] = exc.cap
    if budget is not None:
        stats.update(budget.snapshot())
    result = VerificationResult(Verdict.UNKNOWN, config_name, stats=stats)
    result.diagnostic = str(exc)
    return result


def run_guarded(
    runner,
    program,
    config,
    telemetry=None,
    budget: Optional[Budget] = None,
):
    """Run ``runner(program, config, telemetry=...)`` with crash
    containment; always returns a :class:`VerificationResult`."""
    from repro.verify.result import Verdict, VerificationResult

    try:
        return runner(program, config, telemetry=telemetry)
    except BudgetExceeded as exc:
        return _budget_result(config.name, exc, budget)
    except MemoryError as exc:
        synthetic = BudgetExceeded("memory", "engine", 0.0, 0.0)
        result = _budget_result(config.name, synthetic, budget)
        result.diagnostic = describe_exception(exc)
        return result
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception as exc:  # noqa: BLE001 - the whole point is containment
        result = VerificationResult(
            Verdict.ERROR,
            config.name,
            stats={"error_type": type(exc).__name__},
        )
        result.diagnostic = describe_exception(exc)
        if budget is not None:
            result.stats.update(budget.snapshot())
        return result
