"""Interleaving exploration: naive enumeration and Source-DPOR.

``mode="naive"`` enumerates every interleaving (ground truth for tests).

``mode="dpor"`` implements Source-DPOR (Abdulla, Aronis, Jonsson, Sagonas)
with sleep sets -- the algorithm family behind Nidhugg:

* at each state only threads in the *backtrack set* are explored,
  initialized with a single thread;
* at every reached state, each enabled transition ``e`` of thread ``p`` is
  checked for *races* against executed transitions: address-dependent,
  different threads, and concurrent (the executed index is not in ``e``'s
  happens-before clock).  The happens-before clocks are maintained by the
  interpreter, so program order, reads-from/coherence synchronization and
  thread create/join edges are all captured;
* for each race with an executed event ``d``, the sequence ``v`` of
  post-``d`` events not causally after ``d`` (plus ``e``) is formed, and
  if no *weak initial* of ``v`` is already in the backtrack set of the
  state before ``d``, one is added -- this is the source-set condition
  that keeps sleep sets sound;
* *sleep sets* suppress re-exploring transitions already covered by an
  explored sibling until a dependent transition wakes them.

Completeness is cross-checked by a hypothesis property test: on random
programs DPOR must observe exactly the reads-from classes that naive
enumeration observes.

Complete executions are bucketed by their *reads-from signature*; the
number of distinct signatures is the reads-from equivalence-class count
reported as Table 3's "Traces" column.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.robustness import checkpoint
from repro.smc.compile import CompiledProgram
from repro.smc.interpreter import ExecState, Interpreter, VisibleOp

__all__ = ["ExploreOutcome", "Explorer"]


@dataclass
class ExploreOutcome:
    verdict: str  # "safe" / "unsafe" / "unknown"
    traces: int = 0
    rf_classes: int = 0
    blocked: int = 0
    sleep_blocked: int = 0
    transitions: int = 0
    races: int = 0
    witness_schedule: Optional[List[str]] = None

    def as_stats(self) -> Dict[str, int]:
        return {
            "traces": self.traces,
            "rf_classes": self.rf_classes,
            "blocked": self.blocked,
            "sleep_blocked": self.sleep_blocked,
            "transitions": self.transitions,
            "races": self.races,
        }


def _addr_dependent(a: VisibleOp, b: VisibleOp) -> bool:
    return (
        a.addr is not None
        and a.addr == b.addr
        and (a.is_write or b.is_write)
    )


def _dependent(a: VisibleOp, b: VisibleOp) -> bool:
    if a.tid == b.tid:
        return True
    return _addr_dependent(a, b)


class _Frame:
    __slots__ = (
        "state", "sleep", "enabled", "backtrack", "done", "queue", "last",
        "taken", "taken_cv",
    )

    def __init__(self, state: ExecState, sleep: Dict[str, VisibleOp]) -> None:
        self.state = state
        self.sleep = sleep
        self.enabled: Optional[Dict[str, VisibleOp]] = None
        self.backtrack: Set[str] = set()
        self.done: Dict[str, VisibleOp] = {}
        self.queue: List[Tuple[VisibleOp, Optional[int]]] = []
        self.last: Optional[str] = None
        #: Transition executed FROM this frame most recently, + its clock.
        self.taken: Optional[VisibleOp] = None
        self.taken_cv: Dict[str, int] = {}


class Explorer:
    """DFS interleaving explorer with optional Source-DPOR reduction."""

    def __init__(
        self,
        compiled: CompiledProgram,
        mode: str = "dpor",
        nondet_domain: Sequence[int] = (0, 1),
        max_traces: Optional[int] = None,
        max_transitions: Optional[int] = None,
        time_limit_s: Optional[float] = None,
        stop_at_first_violation: bool = True,
    ) -> None:
        if mode not in ("naive", "dpor"):
            raise ValueError(f"unknown exploration mode {mode!r}")
        self.interp = Interpreter(compiled)
        self.mode = mode
        self.nondet_domain = tuple(nondet_domain)
        self.max_traces = max_traces
        self.max_transitions = max_transitions
        self.time_limit_s = time_limit_s
        self.stop_at_first_violation = stop_at_first_violation
        #: rf signatures of the complete traces of the last run()
        #: (inspected by the DPOR completeness tests).
        self.last_signatures: Set[Tuple] = set()

    # ------------------------------------------------------------------

    def run(self) -> ExploreOutcome:
        out = ExploreOutcome(verdict="safe")
        rf_signatures: Set[Tuple] = set()
        self.last_signatures = rf_signatures
        start = time.monotonic()
        init = self.interp.initial_state()
        stack: List[_Frame] = [_Frame(init, {})]
        exhausted = True
        iterations = 0

        while stack:
            iterations += 1
            if iterations & 0xFF == 0:
                checkpoint("explore")
            if self._over_budget(out, start):
                exhausted = False
                break
            frame = stack[-1]
            if frame.enabled is None:
                status = self._open_frame(frame, stack, out, rf_signatures)
                if status == "violation":
                    if out.witness_schedule is None:
                        out.witness_schedule = [
                            f.last for f in stack if f.last is not None
                        ]
                    if self.stop_at_first_violation:
                        out.verdict = "unsafe"
                        out.rf_classes = len(rf_signatures)
                        return out
                    stack.pop()
                    continue
                if status == "leaf":
                    stack.pop()
                    continue
            if not frame.queue:
                tid = self._select(frame)
                if tid is None:
                    stack.pop()
                    continue
                op = frame.enabled[tid]
                frame.done[tid] = op
                if op.kind == "nondet":
                    frame.queue = [(op, v) for v in self.nondet_domain]
                else:
                    frame.queue = [(op, None)]
            op, val = frame.queue.pop(0)
            frame.last = self._describe(op, val)
            frame.taken = op
            child_state = frame.state.clone()
            self.interp.step(child_state, op.tid, val if val is not None else 0)
            frame.taken_cv = child_state.clocks.get(op.tid, {})
            out.transitions += 1
            stack.append(_Frame(child_state, self._child_sleep(frame, op)))

        out.rf_classes = len(rf_signatures)
        if out.witness_schedule is not None:
            out.verdict = "unsafe"
        elif not exhausted:
            out.verdict = "unknown"
        elif self._nondet_incomplete():
            # The enumerated nondet domain does not cover the full value
            # range, so exhausting it proves nothing: stay sound.
            out.verdict = "unknown"
        return out

    # ------------------------------------------------------------------

    def _child_sleep(self, frame: _Frame, op: VisibleOp) -> Dict[str, VisibleOp]:
        if self.mode != "dpor":
            return {}
        child_sleep: Dict[str, VisibleOp] = {}
        for q, q_op in frame.sleep.items():
            if q != op.tid and not _dependent(q_op, op):
                child_sleep[q] = q_op
        for q, q_op in frame.done.items():
            if q != op.tid and not _dependent(q_op, op):
                child_sleep[q] = q_op
        return child_sleep

    def _open_frame(self, frame: _Frame, stack, out, rf_signatures):
        """Classify a fresh frame; returns 'leaf', 'violation' or 'expand'."""
        state = frame.state
        ops = self.interp.enabled_ops(state)
        if not ops:
            if self.interp.is_complete(state):
                out.traces += 1
                rf_signatures.add(state.rf_signature())
                if state.violated:
                    return "violation"
            else:
                out.blocked += 1  # deadlock
            return "leaf"
        frame.enabled = {op.tid: op for op in sorted(ops, key=lambda o: o.tid)}
        if self.mode == "naive":
            frame.backtrack = set(frame.enabled)
            return "expand"
        # Source-DPOR: race detection + backtrack seeding.
        for tid, op in frame.enabled.items():
            self._update_backtracks(stack, frame, op, out)
        candidates = [t for t in frame.enabled if t not in frame.sleep]
        if not candidates:
            out.sleep_blocked += 1
            return "leaf"
        frame.backtrack.add(min(candidates))
        return "expand"

    # ------------------------------------------------------------------
    # Source-DPOR race handling
    # ------------------------------------------------------------------

    def _update_backtracks(self, stack, frame: _Frame, op: VisibleOp, out) -> None:
        """Detect races of the pending ``op`` against executed transitions
        and apply the source-set backtrack insertion at each race."""
        if op.addr is None:
            return
        p_clock = frame.state.clocks.get(op.tid, {})
        for j in range(len(stack) - 2, -1, -1):
            taken = stack[j].taken
            if (
                taken is None
                or taken.tid == op.tid
                or not _addr_dependent(taken, op)
            ):
                continue
            if j + 1 <= p_clock.get(taken.tid, 0):
                continue  # happens-before op's thread: ordered, not a race
            out.races += 1
            self._insert_backtrack(stack, j, frame, op)

    def _insert_backtrack(self, stack, j: int, frame: _Frame, op: VisibleOp) -> None:
        """The source-set condition: ensure some weak initial of
        ``notdep(d, E)·op`` is in backtrack(pre(d))."""
        d = stack[j].taken
        d_tid, d_pos = d.tid, j + 1
        # v: executed events after d that are not causally after d.
        v: List[Tuple[int, str, Dict[str, int], VisibleOp]] = []
        for k in range(j + 1, len(stack) - 1):
            w = stack[k].taken
            w_cv = stack[k].taken_cv
            if w_cv.get(d_tid, 0) >= d_pos:
                continue  # happens-after d
            v.append((k + 1, w.tid, w_cv, w))
        # Weak initials of v·op.
        initials: Set[str] = set()
        seen_threads: Set[str] = set()
        for idx, (_pos, tid, cv, _w) in enumerate(v):
            if tid in seen_threads:
                continue
            seen_threads.add(tid)
            if all(cv.get(u_tid, 0) < u_pos for u_pos, u_tid, _ucv, _u in v[:idx]):
                initials.add(tid)
        if op.tid not in seen_threads:
            e_cv = frame.state.clocks.get(op.tid, {})
            if all(
                e_cv.get(u_tid, 0) < u_pos and not _addr_dependent(u, op)
                for u_pos, u_tid, _ucv, u in v
            ):
                initials.add(op.tid)
        if not initials:
            initials = {op.tid}
        target = stack[j]
        if initials & target.backtrack:
            return  # already covered
        q = op.tid if op.tid in initials else min(initials)
        if q in target.enabled:
            target.backtrack.add(q)
        else:
            # The chosen initial is not schedulable at pre(d) (e.g. it was
            # lock-blocked): fall back to all enabled threads (FG-style).
            target.backtrack.update(target.enabled)

    def _select(self, frame: _Frame) -> Optional[str]:
        for tid in sorted(frame.backtrack):
            if tid in frame.done or tid not in frame.enabled:
                continue
            if self.mode == "dpor" and tid in frame.sleep:
                continue  # covered by an equivalent explored sibling
            return tid
        return None

    # ------------------------------------------------------------------

    def _over_budget(self, out: ExploreOutcome, start: float) -> bool:
        if self.max_traces is not None and out.traces >= self.max_traces:
            return True
        if (
            self.max_transitions is not None
            and out.transitions >= self.max_transitions
        ):
            return True
        if self.time_limit_s is not None and (
            time.monotonic() - start > self.time_limit_s
        ):
            return True
        return False

    def _nondet_incomplete(self) -> bool:
        prog = self.interp.prog
        return prog.uses_nondet and len(set(self.nondet_domain)) < (1 << prog.width)

    @staticmethod
    def _describe(op: VisibleOp, val: Optional[int]) -> str:
        if op.kind == "nondet":
            return f"{op.tid}: nondet={val}"
        if op.addr is not None:
            return f"{op.tid}: {op.kind} {op.addr}"
        return f"{op.tid}: {op.kind}"
