"""Stateless model checking substrate (Section 6.4 comparators).

The interpreter executes programs at shared-access granularity -- exactly
the event granularity of the SMT encoding -- over a snapshottable state, so
explorers can branch over scheduling decisions:

* :mod:`repro.smc.compile` -- AST to a small register/stack bytecode;
* :mod:`repro.smc.interpreter` -- snapshottable execution states, visible
  operations, enabledness (locks, joins, atomic test-and-set);
* :mod:`repro.smc.explore` -- interleaving exploration: naive enumeration
  and sleep-set dynamic partial-order reduction, with reads-from
  equivalence-class counting;
* :mod:`repro.smc.rfsc` / :mod:`repro.smc.genmc` -- the Nidhugg/rfsc-style
  and GenMC-style verifier presets built on the explorer.
"""

from repro.smc.compile import CompiledProgram, compile_program
from repro.smc.interpreter import ExecState, Interpreter
from repro.smc.explore import ExploreOutcome, Explorer
from repro.smc.replay import ReplayError, replay_schedule

__all__ = [
    "CompiledProgram",
    "compile_program",
    "ExecState",
    "Interpreter",
    "Explorer",
    "ExploreOutcome",
    "replay_schedule",
    "ReplayError",
]
