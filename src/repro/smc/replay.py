"""Replay a recorded schedule in the interpreter.

The explorer reports violating executions as schedules of visible
operations (``"t1: storeg x"``, ``"t0: nondet=3"``).  :func:`replay_schedule`
re-executes such a schedule deterministically, verifying at each step that
the scheduled thread is parked at the recorded operation — turning the
witness into a checkable, inspectable artifact.
"""

from __future__ import annotations

import re
from typing import List, Optional, Union

from repro.lang import ast, parse
from repro.smc.compile import CompiledProgram, compile_program
from repro.smc.interpreter import ExecState, Interpreter

__all__ = ["ReplayError", "replay_schedule"]

_ENTRY = re.compile(
    r"^(?P<tid>[^:]+): (?:(?P<kind>\w+)(?: (?P<addr>\w+))?|nondet=(?P<val>-?\d+))$"
)


class ReplayError(ValueError):
    """The schedule does not match the program's transitions."""


def replay_schedule(
    program: Union[str, ast.Program, CompiledProgram],
    schedule: List[str],
    width: int = 8,
    unwind: int = 8,
) -> ExecState:
    """Execute ``schedule`` step by step; returns the final state.

    Raises :class:`ReplayError` if a scheduled thread is not parked at the
    recorded operation or is disabled at its turn.
    """
    if isinstance(program, str):
        program = parse(program)
    if isinstance(program, ast.Program):
        compiled = compile_program(program, width=width, unwind=unwind)
    else:
        compiled = program
    interp = Interpreter(compiled)
    state = interp.initial_state()

    for i, entry in enumerate(schedule):
        m = _ENTRY.match(entry.strip())
        if not m:
            # "tid: nondet=v" matches via the val group; anything else with
            # a colon but odd shape is rejected.
            raise ReplayError(f"unparseable schedule entry {entry!r}")
        tid = m.group("tid")
        if tid not in state.threads:
            raise ReplayError(f"step {i}: unknown thread {tid!r}")
        op = interp.front(state, tid)
        if op is None:
            raise ReplayError(f"step {i}: thread {tid!r} has no pending op")
        if not interp._is_enabled(state, op):
            raise ReplayError(f"step {i}: thread {tid!r} is blocked")
        value = 0
        if m.group("val") is not None:
            if op.kind != "nondet":
                raise ReplayError(
                    f"step {i}: expected nondet, thread is at {op.kind}"
                )
            value = int(m.group("val"))
        else:
            kind = m.group("kind")
            addr: Optional[str] = m.group("addr")
            if op.kind != kind or (addr is not None and op.addr != addr):
                raise ReplayError(
                    f"step {i}: schedule says {kind} {addr}, thread {tid!r} "
                    f"is at {op.kind} {op.addr}"
                )
        interp.step(state, tid, value)
    return state
