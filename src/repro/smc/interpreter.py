"""Snapshottable interpreter executing at shared-access granularity.

An :class:`ExecState` holds the shared memory and one :class:`ThreadState`
per thread, each *parked* at its next visible operation (shared access,
lock, join, atomic region, or nondet choice).  Local computation between
visible operations runs eagerly, so scheduling decisions exist exactly at
the event granularity of the SMT encoding.

Semantics intentionally mirror the encoding:

* a failed ``assume`` (or exceeding the loop unwind bound) aborts the whole
  execution path -- it corresponds to an infeasible assignment;
* a failed ``assert`` records a violation but the execution must still
  complete feasibly to count as a counterexample (the error condition is
  conjoined with all constraints in the formula);
* ``lock`` and ``atomic`` blocks with a failing ``assume`` are *disabled*
  (blocking) rather than aborting: the corresponding encoding assignments
  simply order the events after the write that unblocks them;
* a deadlocked state (unfinished threads, none enabled) is discarded --
  the encoding has no satisfying assignment for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.smc.compile import CompiledProgram, CompiledThread

__all__ = ["PathAbort", "ThreadState", "ExecState", "Interpreter", "VisibleOp"]

#: Visible instruction opcodes (scheduling points).  Joins are handled
#: separately: they block without being schedulable events.
_VISIBLE = {"loadg", "storeg", "lock", "unlock", "abegin", "nondet"}


class PathAbort(Exception):
    """Internal signal: the executing thread became infeasible (failed
    ``assume`` / exceeded unwind bound).  Caught inside the interpreter and
    turned into a *stuck* thread: the execution continues for the other
    threads (so partial-order reduction can still observe their events) but
    can never complete, exactly like the encoding's infeasible assignments."""


@dataclass
class ThreadState:
    pc: int = 0
    stack: List[int] = field(default_factory=list)
    locals: Dict[str, int] = field(default_factory=dict)
    loops: Dict[int, int] = field(default_factory=dict)
    started: bool = False
    finished: bool = False
    #: Set when an assume failed or the unwind bound was exceeded: the
    #: thread is permanently disabled and the execution cannot complete.
    stuck: bool = False
    store_seq: int = 0
    read_tags: List[Tuple] = field(default_factory=list)

    def clone(self) -> "ThreadState":
        t = ThreadState(
            pc=self.pc,
            stack=list(self.stack),
            locals=dict(self.locals),
            loops=dict(self.loops),
            started=self.started,
            finished=self.finished,
            stuck=self.stuck,
            store_seq=self.store_seq,
            read_tags=list(self.read_tags),
        )
        return t


@dataclass
class ExecState:
    mem: Dict[str, int] = field(default_factory=dict)
    writer: Dict[str, Tuple] = field(default_factory=dict)
    threads: Dict[str, ThreadState] = field(default_factory=dict)
    violated: bool = False
    steps: int = 0
    #: Happens-before vector clocks (maintained by the interpreter so that
    #: start/join synchronization is captured): per-thread clock, plus per
    #: address the last-write clock and the merged reads-since-last-write
    #: clock.  Inner vectors are treated as immutable (replaced wholesale),
    #: so clones share them safely.
    clocks: Dict[str, Dict[str, int]] = field(default_factory=dict)
    addr_w: Dict[str, Dict[str, int]] = field(default_factory=dict)
    addr_r: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def clone(self) -> "ExecState":
        return ExecState(
            mem=dict(self.mem),
            writer=dict(self.writer),
            threads={k: v.clone() for k, v in self.threads.items()},
            violated=self.violated,
            steps=self.steps,
            clocks=dict(self.clocks),
            addr_w=dict(self.addr_w),
            addr_r=dict(self.addr_r),
        )

    def key(self) -> Tuple:
        """Canonical semantic-state key for explicit-state deduplication."""
        return (
            tuple(sorted(self.mem.items())),
            tuple(
                (
                    name,
                    t.pc,
                    tuple(t.stack),
                    tuple(sorted(t.locals.items())),
                    tuple(sorted(t.loops.items())),
                    t.started,
                    t.finished,
                    t.stuck,
                )
                for name, t in sorted(self.threads.items())
            ),
            self.violated,
        )

    @property
    def infeasible(self) -> bool:
        """Some thread is stuck: no extension of this execution is a valid
        complete execution (failed assume / exceeded unwind bound)."""
        return any(t.stuck for t in self.threads.values())

    def rf_signature(self) -> Tuple:
        """Reads-from equivalence signature: each read's source write."""
        return tuple(
            (name, tuple(t.read_tags))
            for name, t in sorted(self.threads.items())
        )


@dataclass
class VisibleOp:
    """A schedulable transition: thread ``tid`` at visible op ``kind``."""

    tid: str
    kind: str  # loadg/storeg/lock/unlock/abegin/join/nondet
    addr: Optional[str] = None  # shared variable touched (None: join/nondet)
    is_write: bool = False
    is_read: bool = False


class Interpreter:
    """Stateless engine over :class:`ExecState` snapshots."""

    def __init__(self, compiled: CompiledProgram) -> None:
        self.prog = compiled
        self.width = compiled.width
        self.unwind = compiled.unwind
        self._mask = (1 << compiled.width) - 1

    # ------------------------------------------------------------------
    # State construction
    # ------------------------------------------------------------------

    def initial_state(self) -> ExecState:
        state = ExecState(mem=dict(self.prog.shared_inits))
        state.writer = {addr: ("init", addr) for addr in state.mem}
        for name in self.prog.threads:
            state.threads[name] = ThreadState()
        state.threads["main"] = ThreadState(started=True)
        self._advance(state, "main")
        self._settle(state)
        return state

    def _settle(self, state: ExecState) -> None:
        """Advance threads parked at joins whose target has now finished."""
        progressed = True
        while progressed:
            progressed = False
            for tid, t in state.threads.items():
                if not t.started or t.finished:
                    continue
                code = self._code(tid)
                op = code[t.pc]
                if op[0] == "join" and state.threads[op[1]].finished:
                    self._advance(state, tid)
                    progressed = True

    # ------------------------------------------------------------------
    # Scheduling interface
    # ------------------------------------------------------------------

    def front(self, state: ExecState, tid: str) -> Optional[VisibleOp]:
        """The visible op ``tid`` is parked at, or None."""
        t = state.threads[tid]
        if not t.started or t.finished or t.stuck:
            return None
        code = self._code(tid)
        op = code[t.pc]
        kind = op[0]
        if kind == "loadg":
            return VisibleOp(tid, kind, op[1], is_read=True)
        if kind == "storeg":
            return VisibleOp(tid, kind, op[1], is_write=True)
        if kind in ("lock", "unlock"):
            return VisibleOp(tid, kind, op[1], is_write=True, is_read=True)
        if kind == "abegin":
            addr = self._atomic_addr(tid, t.pc, op[1])
            return VisibleOp(tid, kind, addr, is_write=True, is_read=True)
        if kind == "join":
            # Parked at a join whose target is unfinished: not schedulable
            # (joins are synchronization, not memory events; once the
            # target finishes, _settle advances through them).
            return None
        if kind == "nondet":
            return VisibleOp(tid, kind)
        raise AssertionError(f"thread parked at invisible op {op!r}")

    def enabled_ops(self, state: ExecState) -> List[VisibleOp]:
        """All currently executable visible ops."""
        out = []
        for tid in state.threads:
            op = self.front(state, tid)
            if op is not None and self._is_enabled(state, op):
                out.append(op)
        return out

    def is_complete(self, state: ExecState) -> bool:
        """All started threads (incl. main) ran to completion.

        A stuck thread never finishes, so infeasible executions are never
        complete."""
        return all(
            t.finished or not t.started for t in state.threads.values()
        ) and state.threads["main"].finished

    def _is_enabled(self, state: ExecState, op: VisibleOp) -> bool:
        if op.kind == "lock":
            return state.mem[op.addr] == 0
        if op.kind == "abegin":
            return self._try_atomic(state, op.tid, commit=False)
        return True

    # ------------------------------------------------------------------
    # Transition execution
    # ------------------------------------------------------------------

    def step(self, state: ExecState, tid: str, nondet_value: int = 0) -> None:
        """Execute the visible op of ``tid`` in-place, then advance."""
        t = state.threads[tid]
        code = self._code(tid)
        op = code[t.pc]
        kind = op[0]
        state.steps += 1
        self._update_clock(state, self.front(state, tid))
        if kind == "loadg":
            t.stack.append(state.mem[op[1]])
            t.read_tags.append(state.writer[op[1]])
            t.pc += 1
        elif kind == "storeg":
            value = t.stack.pop()
            state.mem[op[1]] = value
            state.writer[op[1]] = (tid, t.store_seq)
            t.store_seq += 1
            t.pc += 1
        elif kind == "lock":
            assert state.mem[op[1]] == 0, "lock() stepped while busy"
            t.read_tags.append(state.writer[op[1]])
            state.mem[op[1]] = 1
            state.writer[op[1]] = (tid, t.store_seq)
            t.store_seq += 1
            t.pc += 1
        elif kind == "unlock":
            state.mem[op[1]] = 0
            state.writer[op[1]] = (tid, t.store_seq)
            t.store_seq += 1
            t.pc += 1
        elif kind == "abegin":
            committed = self._try_atomic(state, tid, commit=True)
            assert committed, "atomic region stepped while disabled"
        elif kind == "nondet":
            t.stack.append(nondet_value & self._mask)
            t.pc += 1
        else:  # pragma: no cover - defensive
            raise AssertionError(f"step on invisible op {op!r}")
        self._advance(state, tid)
        self._settle(state)

    # ------------------------------------------------------------------
    # Invisible execution
    # ------------------------------------------------------------------

    def _code(self, tid: str) -> List[Tuple]:
        if tid == "main":
            return self.prog.main.code
        return self.prog.threads[tid].code

    @staticmethod
    def _vmax(a: Dict[str, int], b: Dict[str, int]) -> Dict[str, int]:
        out = dict(a)
        for k, v in b.items():
            if out.get(k, 0) < v:
                out[k] = v
        return out

    def _update_clock(self, state: ExecState, op: "VisibleOp") -> None:
        """Advance the happens-before clocks for the visible op ``op``.

        Reads synchronize with the last write to their address; writes
        (and read-writes: locks, atomic regions) synchronize with the last
        write and all reads since it.  Read-read pairs stay concurrent.
        """
        n = state.steps
        cv = dict(state.clocks.get(op.tid, {}))
        if op.addr is not None:
            if op.is_write:
                cv = self._vmax(
                    self._vmax(cv, state.addr_w.get(op.addr, {})),
                    state.addr_r.get(op.addr, {}),
                )
            else:
                cv = self._vmax(cv, state.addr_w.get(op.addr, {}))
        cv[op.tid] = n
        state.clocks[op.tid] = cv
        if op.addr is not None:
            if op.is_write:
                state.addr_w[op.addr] = cv
                state.addr_r[op.addr] = {}
            else:
                state.addr_r[op.addr] = self._vmax(
                    state.addr_r.get(op.addr, {}), cv
                )

    def _advance(self, state: ExecState, tid: str) -> None:
        """Run invisible instructions until a visible op or thread end.

        A failed assume / exceeded unwind bound marks the thread stuck."""
        try:
            self._advance_inner(state, tid)
        except PathAbort:
            state.threads[tid].stuck = True

    def _advance_inner(self, state: ExecState, tid: str) -> None:
        t = state.threads[tid]
        code = self._code(tid)
        while True:
            if t.pc >= len(code):
                t.finished = True
                return
            op = code[t.pc]
            kind = op[0]
            if kind == "join":
                if state.threads[op[1]].finished:
                    # Join edge: the joiner inherits the target's clock.
                    state.clocks[tid] = self._vmax(
                        state.clocks.get(tid, {}), state.clocks.get(op[1], {})
                    )
                    t.pc += 1
                    continue
                return  # blocked at the join until the target finishes
            if kind in _VISIBLE:
                return
            if kind == "push":
                t.stack.append(op[1] & self._mask)
            elif kind == "loadl":
                t.stack.append(t.locals.get(op[1], 0))
            elif kind == "storel":
                t.locals[op[1]] = t.stack.pop()
            elif kind == "un":
                t.stack.append(self._unop(op[1], t.stack.pop()))
            elif kind == "bin":
                b = t.stack.pop()
                a = t.stack.pop()
                t.stack.append(self._binop(op[1], a, b))
            elif kind == "jmp":
                t.pc = op[1]
                continue
            elif kind == "jz":
                if t.stack.pop() == 0:
                    t.pc = op[1]
                    continue
            elif kind == "assert":
                if t.stack.pop() == 0:
                    state.violated = True
            elif kind == "assume":
                if t.stack.pop() == 0:
                    raise PathAbort()
            elif kind == "iter":
                count = t.loops.get(op[1], 0) + 1
                t.loops[op[1]] = count
                if count > self.unwind + 1:
                    raise PathAbort()
            elif kind == "iterrst":
                t.loops[op[1]] = 0
            elif kind == "start":
                target = state.threads[op[1]]
                target.started = True
                # Create edge: the child inherits the creator's clock.
                state.clocks[op[1]] = self._vmax(
                    state.clocks.get(op[1], {}), state.clocks.get(tid, {})
                )
                self._advance(state, op[1])
            elif kind == "aend":
                pass
            else:  # pragma: no cover - defensive
                raise AssertionError(f"unknown instruction {op!r}")
            t.pc += 1

    def _atomic_addr(self, tid: str, begin_pc: int, end_pc: int) -> Optional[str]:
        for instr in self._code(tid)[begin_pc + 1 : end_pc]:
            if instr[0] in ("loadg", "storeg"):
                return instr[1]
        return None

    def _try_atomic(self, state: ExecState, tid: str, commit: bool) -> bool:
        """Execute an atomic region tentatively; commit only if feasible.

        Returns False (and leaves ``state`` untouched) when an ``assume``
        inside the region fails: the region is a blocking test-and-set.
        """
        t = state.threads[tid]
        code = self._code(tid)
        end = code[t.pc][1]
        tt = t.clone()
        mem = dict(state.mem)
        writer = dict(state.writer)
        tt.pc += 1  # past abegin
        while tt.pc < end - 1:  # stop at aend
            op = code[tt.pc]
            kind = op[0]
            if kind == "loadg":
                tt.stack.append(mem[op[1]])
                tt.read_tags.append(writer[op[1]])
            elif kind == "storeg":
                value = tt.stack.pop()
                mem[op[1]] = value
                writer[op[1]] = (tid, tt.store_seq)
                tt.store_seq += 1
            elif kind == "push":
                tt.stack.append(op[1] & self._mask)
            elif kind == "loadl":
                tt.stack.append(tt.locals.get(op[1], 0))
            elif kind == "storel":
                tt.locals[op[1]] = tt.stack.pop()
            elif kind == "un":
                tt.stack.append(self._unop(op[1], tt.stack.pop()))
            elif kind == "bin":
                b = tt.stack.pop()
                a = tt.stack.pop()
                tt.stack.append(self._binop(op[1], a, b))
            elif kind == "assume":
                if tt.stack.pop() == 0:
                    return False  # blocking: region disabled
            else:  # pragma: no cover - sema restricts atomic bodies
                raise AssertionError(f"instruction {op!r} inside atomic region")
            tt.pc += 1
        if not commit:
            return True
        tt.pc = end  # past aend
        state.threads[tid] = tt
        state.mem = mem
        state.writer = writer
        self._advance(state, tid)
        return True

    # ------------------------------------------------------------------
    # Arithmetic (mirrors the bit-blasted semantics exactly)
    # ------------------------------------------------------------------

    def _signed(self, v: int) -> int:
        if v & (1 << (self.width - 1)):
            return v - (1 << self.width)
        return v

    def _unop(self, op: str, a: int) -> int:
        if op == "-":
            return (-a) & self._mask
        if op == "~":
            return (~a) & self._mask
        if op == "!":
            return 0 if a else 1
        raise AssertionError(op)

    def _binop(self, op: str, a: int, b: int) -> int:
        m = self._mask
        if op == "+":
            return (a + b) & m
        if op == "-":
            return (a - b) & m
        if op == "*":
            return (a * b) & m
        if op == "&":
            return a & b
        if op == "|":
            return a | b
        if op == "^":
            return a ^ b
        if op == "&&":
            return 1 if (a and b) else 0
        if op == "||":
            return 1 if (a or b) else 0
        if op == "==":
            return 1 if a == b else 0
        if op == "!=":
            return 1 if a != b else 0
        if op == "<":
            return 1 if self._signed(a) < self._signed(b) else 0
        if op == "<=":
            return 1 if self._signed(a) <= self._signed(b) else 0
        if op == ">":
            return 1 if self._signed(a) > self._signed(b) else 0
        if op == ">=":
            return 1 if self._signed(a) >= self._signed(b) else 0
        raise AssertionError(op)
