"""Replay an SMT witness trace through the SMC interpreter.

The SMT engine's counterexample (:class:`repro.verify.witness.Trace`) is a
linearization of the accepted partial order, annotated with model values.
This module drives the concrete interpreter (:mod:`repro.smc.interpreter`)
through exactly that schedule, feeding the model's ``nondet()`` values,
and checks at every step that the concrete machine observes the same
values the model claims -- ending with a completed execution whose
assertion actually failed.  A successful replay is an end-to-end
soundness check of frontend + encoding + theory + witness extraction.

Granularity differences between the two layers are bridged explicitly:

* the interpreter pre-applies the initial shared-memory values, so the
  frontend's synthesized init-write events are skipped;
* ``lock(m)`` is two events (RMW read + write) in the encoding but one
  interpreter step; the step runs at the acquire read's position.  Sound
  because the RMW constraint forbids conflicting lock-variable accesses
  between the two events in any model (two acquires can never read the
  same source write), so collapsing them cannot change any observed
  value;
* an ``atomic`` block is one interpreter step; it runs at the block's
  first event and consumes the whole region.

Any mismatch -- a disabled lock, a value disagreement, an unfinished
thread -- raises :class:`ReplayError` with the offending step.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Set, Union

from repro.lang import ast
from repro.lang.parser import parse
from repro.smc.compile import compile_program
from repro.smc.interpreter import Interpreter

__all__ = ["ReplayError", "replay_witness"]


class ReplayError(AssertionError):
    """The witness does not replay: some step disagrees with the concrete
    semantics (this indicates a verifier bug, hence an AssertionError)."""


def replay_witness(
    program: Union[str, ast.Program],
    trace,
    width: int = 8,
    unwind: int = 8,
) -> bool:
    """Replay ``trace`` on ``program``; return whether an assert failed.

    ``width``/``unwind`` must match the configuration that produced the
    witness (event ids are matched against a fresh frontend run, which is
    deterministic).
    """
    if isinstance(program, str):
        program = parse(program)

    # Rebuild the symbolic program to recover event structure (init
    # writes, lock RMW pairs, atomic regions) keyed by eid.
    from repro.frontend.ssa import build_symbolic_program

    sym = build_symbolic_program(program, unwind=unwind, width=width)
    mask = (1 << width) - 1
    init_eids = {
        ev.eid for ev in sym.threads[0].events[: len(sym.shared_inits)]
    }
    lock_addrs = set(sym.lock_addrs)
    acquire_write_of: Dict[int, int] = {}  # acquire read eid -> write eid
    acquire_writes: Set[int] = set()
    for group in sym.rmw_groups:
        if group.addr in lock_addrs:
            acquire_write_of[group.read_eid] = group.write_eid
            acquire_writes.add(group.write_eid)
    region_of: Dict[int, Set[int]] = {}
    for region in sym.atomic_regions:
        eids = set(region)
        for eid in region:
            region_of[eid] = eids

    nondet_queue: Dict[str, Deque[int]] = {}
    for thread, _ssa_name, value in getattr(trace, "nondet_values", ()):
        nondet_queue.setdefault(thread, deque()).append(value)

    interp = Interpreter(compile_program(program, width=width, unwind=unwind))
    state = interp.initial_state()
    consumed: Set[int] = set()

    def fail(step, why: str) -> None:
        raise ReplayError(f"witness replay failed at {step}: {why}")

    def flush_nondet(tid: str) -> bool:
        """Feed model nondet values while ``tid`` is parked at nondet."""
        fed = False
        while True:
            op = interp.front(state, tid)
            if op is None or op.kind != "nondet":
                return fed
            queue = nondet_queue.get(tid)
            value = queue.popleft() if queue else 0
            interp.step(state, tid, nondet_value=value)
            fed = True

    def flush_invisible(tid: str) -> bool:
        """Step ``tid`` through ops that are invisible to the *trace*.

        Two kinds of parked ops produce no trace step and may be resolved
        eagerly (they carry no cross-thread ordering in the encoding):
        nondet choices, and ``atomic`` blocks containing no shared access
        (the encoder emits no events for them, so the witness cannot
        schedule them).
        """
        fed = flush_nondet(tid)
        while True:
            op = interp.front(state, tid)
            if (
                op is None
                or op.kind != "abegin"
                or op.addr is not None
                or not interp._is_enabled(state, op)
            ):
                return fed
            interp.step(state, tid)
            fed = flush_nondet(tid) or True

    def flush_nondet_all() -> None:
        """Feed nondet values (and event-free atomic blocks) to *every*
        parked thread, to fixpoint.

        nondet choices are scheduling points in the interpreter but carry
        no cross-thread ordering in the encoding (they touch no shared
        state), so they may be resolved eagerly.  They must be: a thread
        parked at a nondet that precedes its ``start`` of another thread
        (or that a ``join`` waits on) would otherwise block the whole
        schedule even though the witness is fine.  Feeding a value can
        start new threads or release joins, which can park further
        threads at nondets -- hence the fixpoint loop.
        """
        progressed = True
        while progressed:
            progressed = False
            for tid in list(state.threads):
                if flush_invisible(tid):
                    progressed = True

    for step in trace.steps:
        if step.eid in consumed or step.eid in init_eids:
            continue
        tid = step.thread
        flush_nondet_all()
        op = interp.front(state, tid)
        if op is None:
            fail(step, "thread not schedulable (stuck, finished or blocked)")

        if step.eid in acquire_write_of:
            if op.kind != "lock" or op.addr != step.addr:
                fail(step, f"expected lock({step.addr}), thread at {op.kind}")
            if state.mem[step.addr] != 0:
                fail(step, "lock not free at acquire")
            interp.step(state, tid)
            consumed.add(acquire_write_of[step.eid])
        elif step.eid in acquire_writes:
            # The paired read was never seen first: linearization bug.
            fail(step, "lock-acquire write before its read")
        elif step.eid in region_of:
            if op.kind != "abegin":
                fail(step, f"expected atomic block, thread at {op.kind}")
            if not interp._is_enabled(state, op):
                fail(step, "atomic block disabled (failing assume)")
            interp.step(state, tid)
            consumed.update(region_of[step.eid])
        elif step.addr in lock_addrs:  # release store
            if op.kind != "unlock" or op.addr != step.addr:
                fail(step, f"expected unlock({step.addr}), thread at {op.kind}")
            interp.step(state, tid)
        elif step.kind == "R":
            if op.kind != "loadg" or op.addr != step.addr:
                fail(step, f"expected read of {step.addr}, thread at {op.kind}")
            got = state.mem[step.addr] & mask
            if got != step.value & mask:
                fail(step, f"read observed {got}, model claims {step.value & mask}")
            interp.step(state, tid)
        else:
            if op.kind != "storeg" or op.addr != step.addr:
                fail(step, f"expected write of {step.addr}, thread at {op.kind}")
            interp.step(state, tid)
            got = state.mem[step.addr] & mask
            if got != step.value & mask:
                fail(step, f"wrote {got}, model claims {step.value & mask}")
        consumed.add(step.eid)

    # Trailing nondet choices (after each thread's last memory event).
    flush_nondet_all()
    if not interp.is_complete(state):
        unfinished = [
            name
            for name, t in state.threads.items()
            if t.started and not t.finished
        ]
        raise ReplayError(
            f"witness replay did not complete; unfinished threads: {unfinished}"
        )
    return state.violated
