"""Nidhugg/rfsc-style stateless model checking preset.

Nidhugg's reads-from exploration algorithm enumerates one execution per
reads-from equivalence class.  Our analogue runs the sleep-set DPOR engine
(one execution per Mazurkiewicz trace -- a refinement-compatible
equivalence) and reports the reads-from class count alongside; the
*scaling* behaviour (work proportional to the number of equivalence
classes, independent of formula-style complexity) is the property the
Table 3 comparison exercises.
"""

from __future__ import annotations

from repro.lang import ast
from repro.robustness import checkpoint, effective_time_limit
from repro.smc.compile import compile_program
from repro.smc.explore import Explorer
from repro.verify.result import Verdict, VerificationResult

__all__ = ["verify_rfsc"]


def verify_rfsc(program: ast.Program, config) -> VerificationResult:
    checkpoint("engine")
    compiled = compile_program(program, width=config.width, unwind=config.unwind)
    explorer = Explorer(
        compiled,
        mode="dpor",
        time_limit_s=effective_time_limit(config.time_limit_s),
        max_transitions=config.max_conflicts,  # reuse the generic budget knob
    )
    outcome = explorer.run()
    verdict = {
        "safe": Verdict.SAFE,
        "unsafe": Verdict.UNSAFE,
        "unknown": Verdict.UNKNOWN,
    }[outcome.verdict]
    return VerificationResult(
        verdict,
        config.name,
        schedule=outcome.witness_schedule,
        stats=outcome.as_stats(),
    )
