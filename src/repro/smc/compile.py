"""Compile the mini language to a small stack bytecode for the interpreter.

Each thread body becomes a flat instruction list.  Instructions are plain
tuples ``(op, *args)``:

===============  ==========================================================
``("push", c)``    push a constant
``("loadl", x)``   push the local ``x``
``("storel", x)``  pop into the local ``x``
``("loadg", g)``   *visible*: push the shared variable ``g``
``("storeg", g)``  *visible*: pop into the shared variable ``g``
``("un", op)``     unary operator on the top of stack
``("bin", op)``    binary operator on the two top entries
``("jmp", k)``     unconditional jump to index ``k``
``("jz", k)``      pop; jump to ``k`` if zero
``("assert",)``    pop; record a violation if zero
``("assume",)``    pop; abort the whole execution path if zero
``("iter", l)``    loop-head marker; aborts the path past the unwind bound
``("lock", g)``    *visible*: blocking test-and-set of ``g``
``("unlock", g)``  *visible*: store 0 to ``g``
``("abegin", k)``  *visible*: atomic region up to (excluding) index ``k``
``("aend",)``      end of atomic region
``("nondet",)``    *visible*: push a value chosen by the explorer
``("start", t)``   enable thread ``t`` (main only)
``("join", t)``    *visible*: blocks until thread ``t`` finishes
===============  ==========================================================

Values wrap modulo ``2**width`` with two's-complement comparisons, exactly
matching the bit-blasted encoding; comparisons/logical operators produce
0/1 with strict (non-short-circuit) evaluation, again matching the SSA
lowering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lang import ast
from repro.lang.sema import check_program

__all__ = ["CompiledProgram", "CompiledThread", "compile_program"]

Instr = Tuple


@dataclass
class CompiledThread:
    name: str
    code: List[Instr] = field(default_factory=list)


@dataclass
class CompiledProgram:
    width: int
    unwind: int
    shared_inits: Dict[str, int] = field(default_factory=dict)
    threads: Dict[str, CompiledThread] = field(default_factory=dict)
    main: Optional[CompiledThread] = None
    n_loops: int = 0

    @property
    def uses_nondet(self) -> bool:
        bodies = list(self.threads.values()) + ([self.main] if self.main else [])
        return any(
            instr[0] == "nondet" for t in bodies for instr in t.code
        )


class _ThreadCompiler:
    def __init__(self, program_compiler: "_ProgramCompiler") -> None:
        self.pc = program_compiler
        self.code: List[Instr] = []

    def emit(self, *instr) -> int:
        self.code.append(tuple(instr))
        return len(self.code) - 1

    # -- expressions ----------------------------------------------------

    def expr(self, e: ast.Expr) -> None:
        if isinstance(e, ast.IntLit):
            self.emit("push", e.value)
        elif isinstance(e, ast.VarRef):
            if e.name in self.pc.shared:
                self.emit("loadg", e.name)
            else:
                self.emit("loadl", e.name)
        elif isinstance(e, ast.Nondet):
            self.emit("nondet")
        elif isinstance(e, ast.Unary):
            self.expr(e.operand)
            self.emit("un", e.op)
        elif isinstance(e, ast.Binary):
            self.expr(e.left)
            self.expr(e.right)
            self.emit("bin", e.op)
        else:  # pragma: no cover - sema rejects other shapes
            raise TypeError(f"cannot compile expression {e!r}")

    # -- statements -------------------------------------------------------

    def block(self, stmts: List[ast.Stmt]) -> None:
        for s in stmts:
            self.stmt(s)

    def stmt(self, s: ast.Stmt) -> None:
        if isinstance(s, ast.LocalDecl):
            if s.init is not None:
                self.expr(s.init)
            else:
                # Uninitialized local: fixed to 0 in the interpreter (the
                # encoding leaves it free; cross-validation tests only use
                # initialized locals).
                self.emit("push", 0)
            self.emit("storel", s.name)
        elif isinstance(s, ast.Assign):
            self.expr(s.value)
            if s.name in self.pc.shared:
                self.emit("storeg", s.name)
            else:
                self.emit("storel", s.name)
        elif isinstance(s, ast.If):
            self.expr(s.cond)
            jz = self.emit("jz", -1)
            self.block(s.then_body)
            if s.else_body:
                jmp = self.emit("jmp", -1)
                self.code[jz] = ("jz", len(self.code))
                self.block(s.else_body)
                self.code[jmp] = ("jmp", len(self.code))
            else:
                self.code[jz] = ("jz", len(self.code))
        elif isinstance(s, ast.While):
            loop_id = self.pc.next_loop_id()
            head = len(self.code)
            self.emit("iter", loop_id)
            self.expr(s.cond)
            jz = self.emit("jz", -1)
            self.block(s.body)
            self.emit("jmp", head)
            self.code[jz] = ("jz", len(self.code))
            # Reset the bound counter on exit so a re-entered (nested)
            # loop gets a fresh budget, matching per-occurrence unrolling.
            self.emit("iterrst", loop_id)
        elif isinstance(s, ast.Assert):
            self.expr(s.cond)
            self.emit("assert")
        elif isinstance(s, ast.Assume):
            self.expr(s.cond)
            self.emit("assume")
        elif isinstance(s, ast.Lock):
            self.emit("lock", s.name)
        elif isinstance(s, ast.Unlock):
            self.emit("unlock", s.name)
        elif isinstance(s, ast.Atomic):
            begin = self.emit("abegin", -1)
            self.block(s.body)
            self.emit("aend")
            self.code[begin] = ("abegin", len(self.code))
        elif isinstance(s, ast.Start):
            self.emit("start", s.thread)
        elif isinstance(s, ast.Join):
            self.emit("join", s.thread)
        elif isinstance(s, (ast.Skip, ast.Fence)):
            # Fences are no-ops under SC (the interpreter's model).
            pass
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot compile statement {s!r}")


class _ProgramCompiler:
    def __init__(self, program: ast.Program, width: int, unwind: int) -> None:
        self.program = program
        self.width = width
        self.unwind = unwind
        self.shared = {g.name for g in program.globals}
        self._loop_counter = 0

    def next_loop_id(self) -> int:
        self._loop_counter += 1
        return self._loop_counter - 1

    def compile(self) -> CompiledProgram:
        out = CompiledProgram(
            width=self.width,
            unwind=self.unwind,
            shared_inits={g.name: g.init for g in self.program.globals},
        )
        for tdef in self.program.threads:
            out.threads[tdef.name] = self._compile_thread(tdef)
        main = self.program.main
        if main is None:
            body: List[ast.Stmt] = [ast.Start(t.name) for t in self.program.threads]
            body += [ast.Join(t.name) for t in self.program.threads]
            main = ast.ThreadDef("main", body)
        out.main = self._compile_thread(main)
        out.n_loops = self._loop_counter
        return out

    def _compile_thread(self, tdef: ast.ThreadDef) -> CompiledThread:
        tc = _ThreadCompiler(self)
        tc.block(tdef.body)
        return CompiledThread(tdef.name, tc.code)


def compile_program(
    program: ast.Program, width: int = 8, unwind: int = 8
) -> CompiledProgram:
    """Compile a (checked) program for the SMC interpreter."""
    check_program(program)
    return _ProgramCompiler(program, width, unwind).compile()
