"""GenMC-style stateless model checking preset.

GenMC enumerates execution graphs (reads-from assignments checked for
consistency).  Our analogue shares the sleep-set DPOR engine with the
Nidhugg preset but reports the reads-from equivalence-class count as its
"traces explored" figure -- that count is what Table 3's *Traces* column
measures, and it is the quantity GenMC's exploration is proportional to.
"""

from __future__ import annotations

from repro.lang import ast
from repro.robustness import checkpoint, effective_time_limit
from repro.smc.compile import compile_program
from repro.smc.explore import Explorer
from repro.verify.result import Verdict, VerificationResult

__all__ = ["verify_genmc"]


def verify_genmc(program: ast.Program, config) -> VerificationResult:
    checkpoint("engine")
    compiled = compile_program(program, width=config.width, unwind=config.unwind)
    explorer = Explorer(
        compiled,
        mode="dpor",
        time_limit_s=effective_time_limit(config.time_limit_s),
        max_transitions=config.max_conflicts,
    )
    outcome = explorer.run()
    verdict = {
        "safe": Verdict.SAFE,
        "unsafe": Verdict.UNSAFE,
        "unknown": Verdict.UNKNOWN,
    }[outcome.verdict]
    stats = outcome.as_stats()
    stats["traces"] = outcome.rf_classes or outcome.traces
    return VerificationResult(
        verdict,
        config.name,
        schedule=outcome.witness_schedule,
        stats=stats,
    )
